"""Static per-block execution plans for the window engine.

A block's dynamic instruction stream is split into *slices* at SPAWN
boundaries: ops between two transfer points form one fetch unit (the
analog of a WaveScalar wave / TRIPS hyperblock). Transfer points
themselves are fetch items, not instructions: fetch descends into the
callee once the spawn's control guard resolves -- *data* arguments
flow to the child as they are produced (only control gates the block
order, as in WaveScalar).

The plan also precomputes consumer lists, token ports, per-op control
guards, and (for loops) a terminator pseudo-op that consumes the loop
decider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.ops import Op
from repro.ir.program import (
    BlockDef,
    BlockKind,
    ContextProgram,
    Lit,
    LoopTerm,
    Param,
    Res,
    ReturnTerm,
    ValueRef,
)

#: Environment key for a value: ("p", i) for params, (op_id, port) else.
Key = Tuple

#: Plan items: ("slice", index) or ("spawn", op_id).
Item = Tuple[str, int]


def ref_key(ref: ValueRef) -> Optional[Key]:
    if isinstance(ref, Lit):
        return None
    if isinstance(ref, Param):
        return ("p", ref.index)
    return (ref.op_id, ref.port)


@dataclass
class OpPlan:
    op_id: int
    op: Op
    inputs: Tuple[ValueRef, ...]
    token_ports: Tuple[int, ...]
    guard: Tuple[Tuple[Optional[Key], bool], ...]
    slice_index: int
    attrs: Dict[str, object]
    is_spawn: bool = False
    callee: Optional[str] = None


@dataclass
class BlockPlan:
    name: str
    kind: BlockKind
    n_params: int
    ops: List[OpPlan]
    #: Loop decider pseudo-op id (None for DAG blocks).
    term_id: Optional[int]
    #: Loop carried-value refs (next iteration's arguments).
    next_arg_refs: Tuple[ValueRef, ...]
    #: Return-value refs.
    result_refs: Tuple[ValueRef, ...]
    #: value key -> list of (op_id, port) consumers (term included;
    #: spawns excluded -- their args flow by subscription).
    consumers: Dict[Key, List[Tuple[int, int]]]
    items: List[Item]
    slices: List[List[int]]

    def op(self, op_id: int) -> OpPlan:
        return self.ops[op_id]


def build_plans(program: ContextProgram) -> Dict[str, BlockPlan]:
    return {name: _plan_block(block)
            for name, block in program.blocks.items()}


def _plan_block(block: BlockDef) -> BlockPlan:
    guards_raw = block.guard_chain()
    term = block.terminator
    if isinstance(term, LoopTerm):
        next_arg_refs = term.next_args
        result_refs = term.results
    else:
        assert isinstance(term, ReturnTerm)
        next_arg_refs = ()
        result_refs = term.results

    ops: List[OpPlan] = []
    slices: List[List[int]] = [[]]
    items: List[Item] = []
    for op in block.ops:
        guard = tuple(
            (ref_key(d), s) for d, s in guards_raw[op.op_id]
        )
        plan = OpPlan(
            op_id=op.op_id,
            op=op.op,
            inputs=op.inputs,
            token_ports=tuple(
                p for p, r in enumerate(op.inputs)
                if not isinstance(r, Lit)
            ),
            guard=guard,
            slice_index=len(slices) - 1,
            attrs=op.attrs,
            is_spawn=op.op is Op.SPAWN,
            callee=op.attrs.get("callee"),
        )
        ops.append(plan)
        if op.op is Op.SPAWN:
            # Transfer points are fetch items, not instructions.
            items.append(("slice", len(slices) - 1))
            items.append(("spawn", op.op_id))
            slices.append([])
        else:
            slices[-1].append(op.op_id)

    term_id: Optional[int] = None
    if isinstance(term, LoopTerm):
        term_id = len(block.ops)
        term_plan = OpPlan(
            op_id=term_id,
            op=Op.JOIN,  # placeholder opcode; handled specially
            inputs=(term.decider,),
            token_ports=(
                () if isinstance(term.decider, Lit) else (0,)
            ),
            guard=(),
            slice_index=len(slices) - 1,
            attrs={},
        )
        ops.append(term_plan)
        slices[-1].append(term_id)
    items.append(("slice", len(slices) - 1))

    consumers: Dict[Key, List[Tuple[int, int]]] = {}
    for plan in ops:
        if plan.is_spawn:
            continue
        for port, ref in enumerate(plan.inputs):
            key = ref_key(ref)
            if key is not None:
                consumers.setdefault(key, []).append((plan.op_id, port))

    return BlockPlan(
        name=block.name,
        kind=block.kind,
        n_params=block.n_params,
        ops=ops,
        term_id=term_id,
        next_arg_refs=next_arg_refs,
        result_refs=result_refs,
        consumers=consumers,
        items=items,
        slices=slices,
    )
