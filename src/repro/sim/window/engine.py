"""Execution engine for block-window machines (vN, sequential dataflow).

The fetcher walks the dynamic context tree depth-first -- the von
Neumann order -- stalling whenever the next fetch target depends on an
unresolved decider (a conditional transfer point or a loop backedge).
Fetched slices execute internally by the dataflow firing rule with a
shared issue width, and retire strictly in fetch order; at most
``window`` slices may be in flight.

Only *control* gates fetch: data values flow to in-flight blocks as
they are produced, via per-value subscriptions (the analog of
WaveScalar forwarding live values between waves). This is what lets
consecutive loop iterations pipeline inside the window while still
being fundamentally limited to the block-order window -- the behavior
the paper describes for sequential dataflow (Fig. 5c).

``window=1, width=1`` degenerates to a sequential von Neumann machine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.ir.ops import OP_INFO, Op
from repro.ir.program import BlockKind, ContextProgram, Lit
from repro.sim.latency import load_delay
from repro.sim.memory import Memory
from repro.sim.metrics import ExecutionResult, MetricsRecorder
from repro.sim.window.plan import BlockPlan, Key, build_plans, ref_key


class _Instance:
    """One dynamic context (block activation)."""

    __slots__ = ("iid", "plan", "env", "fetched", "armed", "subs",
                 "term_fired", "term_decision", "parent", "parent_spawn",
                 "live_slices", "done", "delivered")

    def __init__(self, iid: int, plan: BlockPlan,
                 parent: Optional["_Instance"], parent_spawn: Optional[int]):
        self.iid = iid
        self.plan = plan
        self.env: Dict[Key, object] = {}
        self.fetched: Set[int] = set()
        self.armed: Set[int] = set()
        #: key -> list of (target instance, target key): forward the
        #: value when it is published here.
        self.subs: Dict[Key, List[Tuple["_Instance", Key]]] = {}
        self.term_fired = False
        self.term_decision: object = None
        self.parent = parent
        self.parent_spawn = parent_spawn
        self.live_slices = 0
        self.done = False
        self.delivered = False


class WindowEngine:
    """Simulates vN (window=1,width=1) or sequential dataflow."""

    def __init__(self, program: ContextProgram, memory: Memory,
                 window: int = 8, issue_width: int = 128,
                 fetch_width: Optional[int] = None,
                 sample_traces: bool = True,
                 load_latency: int = 1,
                 max_cycles: int = 500_000_000,
                 machine_name: Optional[str] = None):
        if window < 1:
            raise SimulationError("window must be >= 1")
        self.program = program
        self.memory = memory
        self.window = window
        self.issue_width = issue_width
        self.fetch_width = fetch_width if fetch_width else window
        self.load_latency = load_latency
        self.max_cycles = max_cycles
        self.machine_name = machine_name or (
            "vn" if window == 1 and issue_width == 1 else "seqdf"
        )
        self.metrics = MetricsRecorder(sample_traces=sample_traces)
        self.plans = build_plans(program)

        self._next_iid = 0
        self._wait: Dict[Tuple[int, int], Dict[int, object]] = {}
        self._instances: Dict[int, _Instance] = {}
        self._ready: Deque[Tuple[_Instance, int]] = deque()
        self._pending: List[Tuple[_Instance, int, int, object]] = []
        self._retire: Deque[Tuple[_Instance, int]] = deque()
        self._stack: List[List] = []  # [instance, item index]
        self._live = 0
        self._program_results: Dict[int, object] = {}
        self._n_program_results = 0
        #: cycle index -> [(instance, key, value)] loads in flight.
        self._delayed: Dict[int, List[Tuple]] = {}
        # Fetch-stall accounting (why the block order limits
        # parallelism): cycles the fetcher was blocked on an
        # unresolved decider vs. a full window.
        self._stall_decider = 0
        self._stall_window = 0

    # ------------------------------------------------------------------
    def run(self, args: List[object]) -> ExecutionResult:
        entry_plan = self.plans[self.program.entry]
        if len(args) != entry_plan.n_params:
            raise SimulationError(
                f"entry takes {entry_plan.n_params} args, got {len(args)}"
            )
        self._n_program_results = len(entry_plan.result_refs)
        root = self._make_instance(entry_plan, None, None)
        for i, value in enumerate(args):
            self._publish(root, ("p", i), value)
        # Root result delivery: straight to the program-result table.
        self._register_results(root)
        self._stack.append([root, 0])

        completed = False
        while True:
            fired = self._run_cycle()
            progressed = self._retire_slices()
            for _ in range(self.fetch_width):
                if not self._fetch():
                    break
                progressed = True
            self._apply_pending()
            if fired == 0 and not progressed and not self._ready:
                if self._delayed:
                    self.metrics.sample(0, self._live)
                    continue
                if self._is_finished():
                    completed = True
                    break
                self._raise_deadlock()
            self.metrics.sample(fired, self._live)
            if self.metrics.cycles >= self.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles}"
                )

        results = tuple(
            self._program_results.get(i)
            for i in range(self._n_program_results)
        )
        extra = {"window": self.window, "issue_width": self.issue_width,
                 "fetch_width": self.fetch_width,
                 "fetch_stall_decider_cycles": self._stall_decider,
                 "fetch_stall_window_cycles": self._stall_window}
        return self.metrics.result(self.machine_name, completed, results,
                                   extra)

    def _is_finished(self) -> bool:
        return (not self._stack and not self._retire
                and not self._pending and not self._delayed
                and self._live == 0)

    def _raise_deadlock(self) -> None:
        stuck = [(entry[0].plan.name, entry[1])
                 for entry in self._stack[-4:]]
        raise DeadlockError(
            f"window machine stalled: live={self._live}, "
            f"in-flight slices={len(self._retire)}, stack tail={stuck}"
        )

    # ------------------------------------------------------------------
    # Instances, publication, and subscriptions
    # ------------------------------------------------------------------
    def _make_instance(self, plan: BlockPlan, parent: Optional[_Instance],
                       parent_spawn: Optional[int]) -> _Instance:
        inst = _Instance(self._next_iid, plan, parent, parent_spawn)
        self._next_iid += 1
        self._instances[inst.iid] = inst
        return inst

    def _publish(self, inst: _Instance, key: Key, value: object) -> None:
        """Record a value and forward it to consumers and subscribers."""
        inst.env[key] = value
        for dest_op, dest_port in inst.plan.consumers.get(key, ()):
            self._pending.append((inst, dest_op, dest_port, value))
            self._live += 1
        for target, target_key in inst.subs.pop(key, ()):
            self._forward(target, target_key, value)

    def _forward(self, target, target_key: Key, value: object) -> None:
        if isinstance(target, _Instance):
            self._publish(target, target_key, value)
        else:  # ("program", index)
            self._program_results[target_key] = value

    def _bind(self, src_inst: _Instance, ref, target, target_key) -> None:
        """Deliver the value of ``ref`` (evaluated in ``src_inst``) to
        ``target``/``target_key``, now or when it becomes available."""
        if isinstance(ref, Lit):
            self._forward(target, target_key, ref.value)
            return
        key = ref_key(ref)
        if key in src_inst.env:
            self._forward(target, target_key, src_inst.env[key])
        else:
            src_inst.subs.setdefault(key, []).append((target, target_key))

    def _register_results(self, inst: _Instance) -> None:
        """Arrange delivery of ``inst``'s results to its parent (or the
        program-result table). For loops this is called on the exiting
        iteration only."""
        if inst.delivered:
            return
        inst.delivered = True
        parent = inst.parent
        for j, ref in enumerate(inst.plan.result_refs):
            if parent is None:
                self._bind(inst, ref, "program", j)
            else:
                self._bind_result_to_parent(inst, ref, parent, j)

    def _bind_result_to_parent(self, inst: _Instance, ref,
                               parent: _Instance, j: int) -> None:
        key = (inst.parent_spawn, j)
        if isinstance(ref, Lit):
            self._publish(parent, key, ref.value)
            return
        src_key = ref_key(ref)
        if src_key in inst.env:
            self._publish(parent, key, inst.env[src_key])
        else:
            inst.subs.setdefault(src_key, []).append((parent, key))

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _run_cycle(self) -> int:
        fired = 0
        budget = self.issue_width
        ready = self._ready
        while ready and budget > 0:
            inst, op_id = ready.popleft()
            self._fire(inst, op_id)
            fired += 1
            budget -= 1
        return fired

    def _apply_pending(self) -> None:
        matured = self._delayed.pop(self.metrics.cycles, None)
        if matured:
            for inst, key, value in matured:
                self._publish(inst, key, value)
        pending = self._pending
        self._pending = []
        for inst, op_id, port, value in pending:
            self._deposit(inst, op_id, port, value)

    def _deposit(self, inst: _Instance, op_id: int, port: int,
                 value: object) -> None:
        plan = inst.plan.op(op_id)
        key = (inst.iid, op_id)
        entry = self._wait.get(key)
        if entry is None:
            entry = {}
            self._wait[key] = entry
        entry[port] = value
        if self._fire_condition(plan, entry):
            if plan.slice_index in inst.fetched:
                self._ready.append((inst, op_id))
            else:
                inst.armed.add(op_id)

    @staticmethod
    def _fire_condition(plan, entry: Dict[int, object]) -> bool:
        if plan.op is Op.MERGE:
            if 0 not in entry:
                return False
            want = 1 if entry[0] else 2
            return want in entry or want not in plan.token_ports
        return len(entry) == len(plan.token_ports)

    def _fire(self, inst: _Instance, op_id: int) -> None:
        plan = inst.plan.op(op_id)
        entry = self._wait.pop((inst.iid, op_id), {})
        self._live -= len(entry)
        op = plan.op

        if op_id == inst.plan.term_id:
            inst.term_fired = True
            inst.term_decision = (
                entry[0] if 0 in entry else plan.inputs[0].value
            )
            return
        if op is Op.MERGE:
            d = entry[0]
            chosen = 1 if d else 2
            value = (entry[chosen] if chosen in entry
                     else plan.inputs[chosen].value)
            self._publish(inst, (op_id, 0), value)
            return
        inputs = self._gather(plan, entry)
        if op is Op.STEER:
            if bool(inputs[0]) == bool(plan.attrs["sense"]):
                self._publish(inst, (op_id, 0), inputs[1])
            self._publish(inst, (op_id, 1), 0)
        elif op is Op.LOAD:
            value = self.memory.load(plan.attrs["array"], inputs[0])
            delay = load_delay(self.load_latency,
                               plan.attrs["array"], inputs[0])
            if delay <= 1:
                self._publish(inst, (op_id, 0), value)
                self._publish(inst, (op_id, 1), 0)
            else:
                due = self.metrics.cycles + delay - 1
                bucket = self._delayed.setdefault(due, [])
                bucket.append((inst, (op_id, 0), value))
                bucket.append((inst, (op_id, 1), 0))
        elif op is Op.STORE:
            self.memory.store(plan.attrs["array"], inputs[0], inputs[1])
            self._publish(inst, (op_id, 0), 0)
        else:
            info = OP_INFO[op]
            if not info.pure:
                raise SimulationError(f"cannot execute {op.value}")
            self._publish(inst, (op_id, 0), info.evaluate(*inputs))

    @staticmethod
    def _gather(plan, entry: Dict[int, object]) -> List[object]:
        out = []
        for port, ref in enumerate(plan.inputs):
            if port in entry:
                out.append(entry[port])
            else:
                out.append(ref.value)  # Lit
        return out

    # ------------------------------------------------------------------
    # Guard resolution
    # ------------------------------------------------------------------
    def _op_status(self, inst: _Instance, op_id: int) -> str:
        plan = inst.plan.op(op_id)
        if op_id == inst.plan.term_id:
            return "fired" if inst.term_fired else "pending"
        if (op_id, 0) in inst.env or (op_id, 1) in inst.env:
            return "fired"
        if self._guard_taken(inst, plan.guard) is False:
            return "untaken"
        return "pending"

    @staticmethod
    def _guard_taken(inst: _Instance, guard) -> Optional[bool]:
        result: Optional[bool] = True
        for key, sense in guard:
            if key not in inst.env:
                result = None
                continue
            if bool(inst.env[key]) != sense:
                return False
        return result

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _retire_slices(self) -> bool:
        progressed = False
        while self._retire:
            inst, slice_idx = self._retire[0]
            if not self._slice_complete(inst, slice_idx):
                break
            self._retire.popleft()
            inst.live_slices -= 1
            progressed = True
            self._maybe_release(inst)
        return progressed

    def _slice_complete(self, inst: _Instance, slice_idx: int) -> bool:
        for op_id in inst.plan.slices[slice_idx]:
            if self._op_status(inst, op_id) == "pending":
                return False
        return True

    def _maybe_release(self, inst: _Instance) -> None:
        # Pending subscriptions keep the object alive through Python
        # references from the producing chain; dropping it here only
        # bounds the bookkeeping table.
        if inst.done and inst.live_slices == 0:
            self._instances.pop(inst.iid, None)

    # ------------------------------------------------------------------
    # Fetch (the von Neumann block order)
    # ------------------------------------------------------------------
    def _fetch(self) -> bool:
        if not self._stack:
            return False
        if len(self._retire) >= self.window:
            self._stall_window += 1
            return False
        top = self._stack[-1]
        inst, idx = top
        plan = inst.plan
        if idx >= len(plan.items):
            return self._finish_instance(top)
        kind, payload = plan.items[idx]
        if kind == "slice":
            self._fetch_slice(inst, payload)
            top[1] = idx + 1
            return True
        # A transfer point: stall until its control guard resolves.
        op_plan = plan.op(payload)
        taken = self._guard_taken(inst, op_plan.guard)
        if taken is None:
            self._stall_decider += 1
            return False
        top[1] = idx + 1
        if taken is False:
            return True
        callee_plan = self.plans[op_plan.callee]
        child = self._make_instance(callee_plan, inst, payload)
        for i, ref in enumerate(op_plan.inputs):
            self._bind(inst, ref, child, ("p", i))
        self._stack.append([child, 0])
        return True

    def _fetch_slice(self, inst: _Instance, slice_idx: int) -> None:
        inst.fetched.add(slice_idx)
        inst.live_slices += 1
        self._retire.append((inst, slice_idx))
        for op_id in inst.plan.slices[slice_idx]:
            if op_id in inst.armed:
                inst.armed.discard(op_id)
                self._ready.append((inst, op_id))
            elif not inst.plan.ops[op_id].token_ports:
                # Only-literal inputs (loop term with literal decider).
                self._ready.append((inst, op_id))

    def _finish_instance(self, top: List) -> bool:
        inst: _Instance = top[0]
        plan = inst.plan
        if plan.kind is BlockKind.DAG:
            self._register_results(inst)
            inst.done = True
            self._stack.pop()
            self._maybe_release(inst)
            return True
        # Loop: wait for the backedge decider (wave-order stall).
        if not inst.term_fired:
            self._stall_decider += 1
            return False
        inst.done = True
        if inst.term_decision:
            nxt = self._make_instance(plan, inst.parent, inst.parent_spawn)
            for i, ref in enumerate(plan.next_arg_refs):
                self._bind(inst, ref, nxt, ("p", i))
            top[0] = nxt
            top[1] = 0
            self._maybe_release(inst)
            return True
        self._register_results(inst)
        self._stack.pop()
        self._maybe_release(inst)
        return True
