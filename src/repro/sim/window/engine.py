"""Execution engine for block-window machines (vN, sequential dataflow).

The fetcher walks the dynamic context tree depth-first -- the von
Neumann order -- stalling whenever the next fetch target depends on an
unresolved decider (a conditional transfer point or a loop backedge).
Fetched slices execute internally by the dataflow firing rule with a
shared issue width, and retire strictly in fetch order; at most
``window`` slices may be in flight.

Only *control* gates fetch: data values flow to in-flight blocks as
they are produced, via per-value subscriptions (the analog of
WaveScalar forwarding live values between waves). This is what lets
consecutive loop iterations pipeline inside the window while still
being fundamentally limited to the block-order window -- the behavior
the paper describes for sequential dataflow (Fig. 5c).

``window=1, width=1`` degenerates to a sequential von Neumann machine.

Hot-path layout (see docs/ARCHITECTURE.md, "Simulator performance"):
the same per-node dispatch-closure design as the tagged/queued
engines.  Each static op gets a firing closure specialized at engine
construction -- per-op constants (immediates, consumer lists, output
keys, memory accessors, the pending buffer's ``append``) are bound
once, so a firing does no opcode dispatch and no plan lookups.  The
wait-match store is per-instance (``inst.wait[op_id]``) instead of a
global dict keyed by ``(iid, op_id)`` tuples, and the deposit drain
reads one precomputed descriptor tuple per token
(:attr:`repro.sim.window.plan.BlockPlan.dep`).  Closures are built
once per *static block* and shared by every dynamic instance, so loop
iterations pay nothing for specialization.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.ir.ops import OP_INFO, Op
from repro.ir.program import BlockKind, ContextProgram
from repro.sim.latency import load_delay
from repro.sim.memory import Memory
from repro.sim.metrics import ExecutionResult, MetricsRecorder
from repro.sim.profile import EngineProfiler
from repro.sim.watchdog import watchdog_horizon
from repro.sim.window.plan import (
    BlockPlan,
    Key,
    OpPlan,
    build_plans,
)

#: Shared empty wait entry for ops fired via the only-literal fetch
#: path (never written to; firing closures only read it).
_NO_ENTRY: Dict[int, object] = {}


class _Instance:
    """One dynamic context (block activation)."""

    __slots__ = ("iid", "plan", "env", "fetched", "armed", "subs",
                 "term_fired", "term_decision", "parent", "parent_spawn",
                 "live_slices", "done", "delivered", "wait", "fires",
                 "dep", "fired")

    def __init__(self, iid: int, plan: BlockPlan,
                 parent: Optional["_Instance"],
                 parent_spawn: Optional[int],
                 fires: List[Callable]):
        self.iid = iid
        self.plan = plan
        self.env: Dict[Key, object] = {}
        self.fetched: Set[int] = set()
        self.armed: Set[int] = set()
        #: key -> list of (target instance, target key): forward the
        #: value when it is published here.
        self.subs: Dict[Key, List[Tuple["_Instance", Key]]] = {}
        self.term_fired = False
        self.term_decision: object = None
        self.parent = parent
        self.parent_spawn = parent_spawn
        self.live_slices = 0
        self.done = False
        self.delivered = False
        #: Wait-match store: op id -> {port: value} (slot-indexed per
        #: instance; replaces the engine-global ``(iid, op_id)`` dict).
        self.wait: Dict[int, Dict[int, object]] = {}
        #: The per-plan firing-closure table (shared across instances).
        self.fires = fires
        #: The per-plan deposit-descriptor table (hot alias).
        self.dep = plan.dep
        #: Op ids that have fired (published an output or, for the
        #: loop term, resolved).  The retire scan's "not pending"
        #: check is one int-set lookup instead of tuple-key env
        #: probes; spawn ids land here too when child results arrive
        #: (harmless -- spawns never appear in slices).
        self.fired: Set[int] = set()


class WindowEngine:
    """Simulates vN (window=1,width=1) or sequential dataflow.

    The engine binds ``memory`` and the program's plans into per-node
    closures at construction; neither may be swapped afterwards.
    """

    def __init__(self, program: ContextProgram, memory: Memory,
                 window: int = 8, issue_width: int = 128,
                 fetch_width: Optional[int] = None,
                 sample_traces: bool = True,
                 load_latency: int = 1,
                 max_cycles: int = 500_000_000,
                 machine_name: Optional[str] = None,
                 profile: bool = False,
                 kernels=None,
                 cache=None):
        if window < 1:
            raise SimulationError("window must be >= 1")
        self.program = program
        self.memory = memory
        self.window = window
        self.issue_width = issue_width
        self.fetch_width = fetch_width if fetch_width else window
        self.load_latency = load_latency
        self.max_cycles = max_cycles
        #: Optional stateful cache model (repro.sim.cache.CacheModel):
        #: load delays come from cache probes, stores probe it too.
        self._cache = cache
        #: First cycle index past the latest last-level miss (cache
        #: mode); bounds the profiled loop's hit/miss stall split.
        self._miss_until: List[int] = [0]
        self.machine_name = machine_name or (
            "vn" if window == 1 and issue_width == 1 else "seqdf"
        )
        self.metrics = MetricsRecorder(sample_traces=sample_traces)
        # run() selects the profiled cycle loop only when set, so the
        # default path has no per-cycle profiling branches.
        self._profiler = EngineProfiler() if profile else None
        self.plans = build_plans(program)

        self._next_iid = 0
        self._instances: Dict[int, _Instance] = {}
        self._ready: Deque[Tuple[_Instance, int]] = deque()
        # The containers below are captured by the firing closures and
        # MUST stay the same objects for the engine's lifetime (mutate
        # in place, never rebind).
        self._pending: List[Tuple[_Instance, int, int, object]] = []
        self._livebox: List[int] = [0]
        #: In-flight slices in fetch order: [instance, slice index,
        #: retire-scan position] (see :meth:`_retire_slices`).
        self._retire: Deque[List] = deque()
        self._stack: List[List] = []  # [instance, item index]
        self._program_results: Dict[int, object] = {}
        self._n_program_results = 0
        #: cycle index -> [(instance, key, value)] loads in flight.
        self._delayed: Dict[int, List[Tuple]] = {}
        # Fetch-stall accounting (why the block order limits
        # parallelism): cycles the fetcher was blocked on an
        # unresolved decider vs. a full window.
        self._stall_decider = 0
        self._stall_window = 0

        #: block name -> list of firing closures, one per op (shared
        #: by every dynamic instance of the block).  With generated
        #: kernels the tables come from the kernel module instead;
        #: profiled runs always interpret (the profiler wraps the
        #: closure path).
        self._kernels = None
        if kernels is not None and self._profiler is None:
            self._kernels = kernels
            self._fire_tables: Dict[str, List[Callable]] = (
                kernels.ns["bind_fires"](self)
            )
        else:
            self._fire_tables = {
                name: [self._make_fire(plan, p) for p in plan.ops]
                for name, plan in self.plans.items()
            }

    # ------------------------------------------------------------------
    # ``_live`` stays addressable for diagnostics/tests while the hot
    # closures mutate the underlying one-slot box directly.
    @property
    def _live(self) -> int:
        return self._livebox[0]

    @_live.setter
    def _live(self, value: int) -> None:
        self._livebox[0] = value

    # ------------------------------------------------------------------
    def run(self, args: List[object]) -> ExecutionResult:
        entry_plan = self.plans[self.program.entry]
        if len(args) != entry_plan.n_params:
            raise SimulationError(
                f"entry takes {entry_plan.n_params} args, got {len(args)}"
            )
        self._n_program_results = len(entry_plan.result_refs)
        root = self._make_instance(entry_plan, None, None)
        for i, value in enumerate(args):
            self._publish(root, ("p", i), value)
        # Root result delivery: straight to the program-result table.
        self._register_results(root)
        self._stack.append([root, 0])

        if self._profiler is not None:
            completed = self._run_loop_profiled()
        elif self._kernels is not None:
            completed = self._kernels.ns["run_loop"](self)
        else:
            completed = self._run_loop()

        results = tuple(
            self._program_results.get(i)
            for i in range(self._n_program_results)
        )
        extra = {"window": self.window, "issue_width": self.issue_width,
                 "fetch_width": self.fetch_width,
                 "fetch_stall_decider_cycles": self._stall_decider,
                 "fetch_stall_window_cycles": self._stall_window}
        if self._profiler is not None:
            extra["profile"] = self._profiler.finish(
                self.machine_name, self.metrics.cycles,
                self.metrics.instructions, self._node_label,
            )
        return self.metrics.result(self.machine_name, completed, results,
                                   extra)

    def _node_label(self, key: Tuple[str, int]) -> str:
        block, op_id = key
        p = self.plans[block].ops[op_id]
        return f"{p.op.value}@{block}#{op_id}"

    def _run_loop(self) -> bool:
        # The cycle loop is fully inlined (issue, retire, fetch,
        # deposit, metrics sampling): window machines fire ~1
        # instruction per cycle (vN literally so), which makes
        # per-cycle call and attribute overhead -- not the firing
        # closures -- the host bottleneck.
        completed = False
        metrics = self.metrics
        livebox = self._livebox
        ready = self._ready
        popleft = ready.popleft
        ready_append = ready.append
        pending = self._pending
        retire = self._retire
        retire_popleft = retire.popleft
        delayed = self._delayed
        fetch = self._fetch
        publish = self._publish
        status = self._op_status
        maybe_release = self._maybe_release
        issue_width = self.issue_width
        fetch_width = self.fetch_width
        max_cycles = self.max_cycles
        wd_horizon = watchdog_horizon(max_cycles)
        idle_streak = 0
        # Metrics are accumulated in locals and committed in the
        # ``finally`` below.  Only variable-latency load closures read
        # ``metrics.cycles`` mid-run (to schedule maturity), so the
        # counter is synced back each cycle exactly in that mode --
        # cache probes schedule maturities the same way.
        sync_cycles = self.load_latency > 1 or self._cache is not None
        traces = metrics.sample_traces
        ipc_append = metrics.ipc_trace.append
        live_append = metrics.live_trace.append
        cycles = metrics.cycles
        instructions = metrics.instructions
        peak_live = metrics._peak_live
        live_sum = metrics._live_sum
        try:
            while True:
                # Issue: fire ready ops up to the shared width.
                fired = 0
                if ready:
                    budget = issue_width
                    while ready and budget > 0:
                        inst, op_id = popleft()
                        inst.fires[op_id](inst)
                        fired += 1
                        budget -= 1
                # Retire completed head-of-window slices, in fetch
                # order.  An op's "not pending" status is monotone
                # (outputs are write-once and a false guard stays
                # false), so each in-flight entry ``[inst, slice ops,
                # scan pos]`` re-checks only from its scan position.
                progressed = False
                while retire:
                    entry = retire[0]
                    inst = entry[0]
                    ops = entry[1]
                    pos = entry[2]
                    n = len(ops)
                    fired_set = inst.fired
                    while pos < n:
                        oid = ops[pos]
                        if oid in fired_set:
                            pos += 1
                            continue
                        if (not inst.plan.guarded[oid]
                                or status(inst, oid) == "pending"):
                            break
                        pos += 1  # guard resolved untaken
                    if pos < n:
                        entry[2] = pos
                        break
                    retire_popleft()
                    inst.live_slices -= 1
                    progressed = True
                    maybe_release(inst)
                # Fetch along the von Neumann block order.
                fc = fetch_width
                while fc:
                    if not fetch():
                        break
                    progressed = True
                    fc -= 1
                # Deposit: matured loads, then this cycle's tokens.
                # The one-cycle buffer is what keeps values fired at
                # cycle N invisible until N+1.  Each token carries its
                # consumer descriptor ``c = (op_id, port, kind,
                # n_ports, slice_index, merge_lit)``
                # (:attr:`repro.sim.window.plan.BlockPlan.consumers`).
                if delayed:
                    matured = delayed.pop(cycles, None)
                    if matured:
                        for inst, key, value in matured:
                            publish(inst, key, value)
                if pending:
                    # Deposits never publish, so nothing appends to
                    # ``pending`` while it drains; iterate in place
                    # and clear.
                    for inst, c, value in pending:
                        op_id = c[0]
                        wait = inst.wait
                        entry = wait.get(op_id)
                        if entry is None:
                            wait[op_id] = entry = {c[1]: value}
                            n_have = 1
                        else:
                            entry[c[1]] = value
                            n_have = len(entry)
                        if c[2]:  # DEP_MERGE
                            if 0 not in entry:
                                continue
                            want = 1 if entry[0] else 2
                            if want not in entry and not c[5][want - 1]:
                                continue
                        elif n_have != c[3]:
                            continue
                        if c[4] in inst.fetched:
                            ready_append((inst, op_id))
                        else:
                            inst.armed.add(op_id)
                    del pending[:]
                if fired == 0 and not progressed and not ready:
                    idle_streak += 1
                    if idle_streak >= wd_horizon and (
                            not delayed or min(delayed) < cycles):
                        # Either quiesced-but-live for the whole
                        # horizon, or waiting on a load whose due
                        # cycle already passed (stale bookkeeping):
                        # wedged either way.
                        metrics.cycles = cycles
                        self._raise_deadlock(watchdog=idle_streak)
                    if delayed:
                        # Idle cycle waiting on in-flight loads.
                        cycles += 1
                        metrics.cycles = cycles
                        live = livebox[0]
                        if live > peak_live:
                            peak_live = live
                        live_sum += live
                        if traces:
                            ipc_append(0)
                            live_append(live)
                        continue
                    if self._is_finished():
                        completed = True
                        break
                    self._raise_deadlock()
                else:
                    idle_streak = 0
                cycles += 1
                if sync_cycles:
                    metrics.cycles = cycles
                instructions += fired
                live = livebox[0]
                if live > peak_live:
                    peak_live = live
                live_sum += live
                if traces:
                    ipc_append(fired)
                    live_append(live)
                if cycles >= max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={self.max_cycles}"
                    )
        finally:
            metrics.cycles = cycles
            metrics.instructions = instructions
            metrics._peak_live = peak_live
            metrics._live_sum = live_sum
        return completed

    def _run_loop_profiled(self) -> bool:
        """:meth:`_run_loop` with stall attribution.

        Samples through :class:`MetricsRecorder` directly instead of
        the locals-accumulation fast path; cycle/instruction totals
        are identical, only host speed differs.
        """
        prof = self._profiler
        end_cycle = prof.end_cycle
        fire_rec = prof.fire
        metrics = self.metrics
        sample = metrics.sample
        livebox = self._livebox
        ready = self._ready
        popleft = ready.popleft
        ready_append = ready.append
        pending = self._pending
        retire = self._retire
        retire_popleft = retire.popleft
        delayed = self._delayed
        fetch = self._fetch
        publish = self._publish
        status = self._op_status
        maybe_release = self._maybe_release
        issue_width = self.issue_width
        fetch_width = self.fetch_width
        max_cycles = self.max_cycles
        wd_horizon = watchdog_horizon(max_cycles)
        idle_streak = 0
        miss_until = (self._miss_until if self._cache is not None
                      else None)
        while True:
            # Issue: fire ready ops up to the shared width.
            fired = 0
            width_limited = False
            if ready:
                budget = issue_width
                while ready and budget > 0:
                    inst, op_id = popleft()
                    inst.fires[op_id](inst)
                    fired += 1
                    budget -= 1
                    fire_rec((inst.plan.name, op_id))
                width_limited = budget == 0 and bool(ready)
            # Retire completed head-of-window slices, in fetch order.
            progressed = False
            while retire:
                entry = retire[0]
                inst = entry[0]
                ops = entry[1]
                pos = entry[2]
                n = len(ops)
                fired_set = inst.fired
                while pos < n:
                    oid = ops[pos]
                    if oid in fired_set:
                        pos += 1
                        continue
                    if (not inst.plan.guarded[oid]
                            or status(inst, oid) == "pending"):
                        break
                    pos += 1  # guard resolved untaken
                if pos < n:
                    entry[2] = pos
                    break
                retire_popleft()
                inst.live_slices -= 1
                progressed = True
                maybe_release(inst)
            # Fetch along the von Neumann block order.
            fc = fetch_width
            while fc:
                if not fetch():
                    break
                progressed = True
                fc -= 1
            # Deposit: matured loads, then this cycle's tokens.
            if delayed:
                matured = delayed.pop(metrics.cycles, None)
                if matured:
                    for inst, key, value in matured:
                        publish(inst, key, value)
            if pending:
                for inst, c, value in pending:
                    op_id = c[0]
                    wait = inst.wait
                    entry = wait.get(op_id)
                    if entry is None:
                        wait[op_id] = entry = {c[1]: value}
                        n_have = 1
                    else:
                        entry[c[1]] = value
                        n_have = len(entry)
                    if c[2]:  # DEP_MERGE
                        if 0 not in entry:
                            continue
                        want = 1 if entry[0] else 2
                        if want not in entry and not c[5][want - 1]:
                            continue
                    elif n_have != c[3]:
                        continue
                    if c[4] in inst.fetched:
                        ready_append((inst, op_id))
                    else:
                        inst.armed.add(op_id)
                del pending[:]
            if fired == 0 and not progressed and not ready:
                idle_streak += 1
                if idle_streak >= wd_horizon and (
                        not delayed
                        or min(delayed) < metrics.cycles):
                    self._raise_deadlock(watchdog=idle_streak)
                if delayed:
                    # Idle cycle waiting on in-flight loads (the fast
                    # loop skips the max_cycles check here; mirror it).
                    sample(0, livebox[0])
                    if miss_until is None:
                        end_cycle("memory_stall")
                    else:
                        prof.end_cycle_memory(
                            metrics.cycles <= miss_until[0])
                    continue
                if self._is_finished():
                    return True
                self._raise_deadlock()
            else:
                idle_streak = 0
            sample(fired, livebox[0])
            if fired:
                end_cycle("width_limited" if width_limited else "fired")
            elif delayed:
                if miss_until is None:
                    end_cycle("memory_stall")
                else:
                    prof.end_cycle_memory(
                        metrics.cycles <= miss_until[0])
            elif livebox[0] > 0:
                end_cycle("waiting_operands")
            else:
                end_cycle("idle")
            if metrics.cycles >= max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles}"
                )

    def _is_finished(self) -> bool:
        return (not self._stack and not self._retire
                and not self._pending and not self._delayed
                and self._livebox[0] == 0)

    def _raise_deadlock(self, watchdog: "int | None" = None) -> None:
        stuck = [(entry[0].plan.name, entry[1])
                 for entry in self._stack[-4:]]
        via = ("" if watchdog is None else
               f" (progress watchdog: {watchdog} consecutive cycles "
               f"without progress)")
        raise DeadlockError(
            f"window machine stalled{via}: live={self._livebox[0]}, "
            f"in-flight slices={len(self._retire)}, stack tail={stuck}"
        )

    # ------------------------------------------------------------------
    # Instances, publication, and subscriptions
    # ------------------------------------------------------------------
    def _make_instance(self, plan: BlockPlan, parent: Optional[_Instance],
                       parent_spawn: Optional[int]) -> _Instance:
        inst = _Instance(self._next_iid, plan, parent, parent_spawn,
                         self._fire_tables[plan.name])
        self._next_iid += 1
        self._instances[inst.iid] = inst
        return inst

    def _publish(self, inst: _Instance, key: Key, value: object) -> None:
        """Record a value and forward it to consumers and subscribers.

        Cold-path twin of the inlined publishes inside the firing
        closures (used for entry args, matured loads, and bindings);
        any semantic change here must be mirrored in
        :meth:`_make_fire`.
        """
        inst.env[key] = value
        k0 = key[0]
        if k0 != "p":
            inst.fired.add(k0)
        cons = inst.plan.consumers.get(key)
        if cons:
            append = self._pending.append
            for dest in cons:
                append((inst, dest, value))
            self._livebox[0] += len(cons)
        if inst.subs:
            subs = inst.subs.pop(key, None)
            if subs:
                for target, target_key in subs:
                    self._forward(target, target_key, value)

    def _forward(self, target, target_key: Key, value: object) -> None:
        if isinstance(target, _Instance):
            self._publish(target, target_key, value)
        else:  # ("program", index)
            self._program_results[target_key] = value

    def _register_results(self, inst: _Instance) -> None:
        """Arrange delivery of ``inst``'s results to its parent (or the
        program-result table). For loops this is called on the exiting
        iteration only."""
        if inst.delivered:
            return
        inst.delivered = True
        parent = inst.parent
        env = inst.env
        if parent is None:
            results = self._program_results
            for kind, payload, j in inst.plan.result_specs:
                if kind:  # BIND_KEY
                    if payload in env:
                        results[j] = env[payload]
                    else:
                        inst.subs.setdefault(payload, []).append(
                            ("program", j))
                else:
                    results[j] = payload
            return
        spawn = inst.parent_spawn
        publish = self._publish
        for kind, payload, j in inst.plan.result_specs:
            if kind:  # BIND_KEY
                if payload in env:
                    publish(parent, (spawn, j), env[payload])
                else:
                    inst.subs.setdefault(payload, []).append(
                        (parent, (spawn, j)))
            else:
                publish(parent, (spawn, j), payload)

    # ------------------------------------------------------------------
    # Per-op dispatch closures
    # ------------------------------------------------------------------
    def _make_fire(self, bplan: BlockPlan,
                   p: OpPlan) -> Callable[[_Instance], None]:
        """Build the firing closure for one static op (shared by every
        dynamic instance of the block).

        All per-op constants -- immediates, consumer lists, output
        keys, memory accessors, the pending buffer's ``append`` -- are
        bound here, once, so a firing does no opcode dispatch and no
        plan lookups.  Publish semantics (env write, consumer fan-out,
        subscription drain -- in that order) mirror :meth:`_publish`
        exactly.
        """
        op_id = p.op_id
        op = p.op
        imms = p.imms
        livebox = self._livebox
        append = self._pending.append
        forward = self._forward
        key0 = (op_id, 0)
        key1 = (op_id, 1)
        cons0 = tuple(bplan.consumers.get(key0, ()))
        cons1 = tuple(bplan.consumers.get(key1, ()))
        n0 = len(cons0)
        n1 = len(cons1)
        # At fire time a non-MERGE op holds exactly one token per
        # token port (ports are write-once), so the live-token delta
        # of a firing is a closure constant.
        n_t = len(p.token_ports)
        d0 = n0 - n_t
        d1 = n1 - n_t

        if op_id == bplan.term_id:
            lit = imms.get(0)

            def fire_term(inst):
                entry = inst.wait.pop(op_id, _NO_ENTRY)
                livebox[0] -= n_t
                inst.fired.add(op_id)
                inst.term_fired = True
                inst.term_decision = (
                    entry[0] if 0 in entry else lit
                )
            return fire_term

        if op is Op.SPAWN:
            def fire_spawn(inst):  # pragma: no cover - fetch item only
                raise SimulationError(
                    "spawn is a transfer point, not an instruction"
                )
            return fire_spawn

        if op is Op.MERGE:
            def fire_merge(inst):
                entry = inst.wait.pop(op_id, _NO_ENTRY)
                livebox[0] -= len(entry)
                inst.fired.add(op_id)
                chosen = 1 if entry[0] else 2
                value = (entry[chosen] if chosen in entry
                         else imms[chosen])
                inst.env[key0] = value
                for d in cons0:
                    append((inst, d, value))
                livebox[0] += n0
                if inst.subs:
                    subs = inst.subs.pop(key0, None)
                    if subs:
                        for target, target_key in subs:
                            forward(target, target_key, value)
            return fire_merge

        if op is Op.STEER:
            sense = bool(p.attrs["sense"])
            imm0 = imms.get(0)
            imm1 = imms.get(1)

            def fire_steer(inst):
                entry = inst.wait.pop(op_id, _NO_ENTRY)
                inst.fired.add(op_id)
                decider = entry[0] if 0 in entry else imm0
                value = entry[1] if 1 in entry else imm1
                if bool(decider) == sense:
                    inst.env[key0] = value
                    for d in cons0:
                        append((inst, d, value))
                    livebox[0] += n0
                    if inst.subs:
                        subs = inst.subs.pop(key0, None)
                        if subs:
                            for target, target_key in subs:
                                forward(target, target_key, value)
                inst.env[key1] = 0
                for d in cons1:
                    append((inst, d, 0))
                livebox[0] += d1
                if inst.subs:
                    subs = inst.subs.pop(key1, None)
                    if subs:
                        for target, target_key in subs:
                            forward(target, target_key, 0)
            return fire_steer

        if op is Op.LOAD:
            array = p.attrs["array"]
            mem_load = self.memory.load
            latency = self.load_latency
            metrics = self.metrics
            delayed = self._delayed
            imm0 = imms.get(0)

            if self._cache is not None:
                # Cache mode: the probe decides the delay; the miss
                # box lets the profiled loop split memory stalls into
                # hit vs. last-level-miss cycles.
                publish = self._publish
                cache_load = self._cache.access_load
                miss_latency = self._cache.miss_latency
                miss_until = self._miss_until

                def fire_load_cached(inst):
                    entry = inst.wait.pop(op_id, _NO_ENTRY)
                    livebox[0] -= n_t
                    addr = entry[0] if 0 in entry else imm0
                    value = mem_load(array, addr)
                    delay = cache_load(array, addr)
                    if delay <= 1:
                        publish(inst, key0, value)
                        publish(inst, key1, 0)
                    else:
                        due = metrics.cycles + delay - 1
                        if (delay >= miss_latency
                                and due + 1 > miss_until[0]):
                            miss_until[0] = due + 1
                        bucket = delayed.get(due)
                        if bucket is None:
                            delayed[due] = bucket = []
                        bucket.append((inst, key0, value))
                        bucket.append((inst, key1, 0))
                return fire_load_cached

            if latency <= 1:
                # Idealized timing: every load publishes immediately
                # (``load_delay`` is the constant 1), so skip the delay
                # computation and inline both publishes.
                def fire_load_fast(inst):
                    entry = inst.wait.pop(op_id, _NO_ENTRY)
                    inst.fired.add(op_id)
                    addr = entry[0] if 0 in entry else imm0
                    value = mem_load(array, addr)
                    inst.env[key0] = value
                    for d in cons0:
                        append((inst, d, value))
                    livebox[0] += d0
                    if inst.subs:
                        subs = inst.subs.pop(key0, None)
                        if subs:
                            for target, target_key in subs:
                                forward(target, target_key, value)
                    inst.env[key1] = 0
                    for d in cons1:
                        append((inst, d, 0))
                    livebox[0] += n1
                    if inst.subs:
                        subs = inst.subs.pop(key1, None)
                        if subs:
                            for target, target_key in subs:
                                forward(target, target_key, 0)
                return fire_load_fast

            publish = self._publish

            def fire_load(inst):
                entry = inst.wait.pop(op_id, _NO_ENTRY)
                livebox[0] -= n_t
                addr = entry[0] if 0 in entry else imm0
                value = mem_load(array, addr)
                delay = load_delay(latency, array, addr)
                if delay <= 1:
                    publish(inst, key0, value)
                    publish(inst, key1, 0)
                else:
                    # Fires only at maturity: ``_publish`` marks
                    # ``inst.fired`` then, keeping the op pending for
                    # the retire scan until the value lands.
                    due = metrics.cycles + delay - 1
                    bucket = delayed.get(due)
                    if bucket is None:
                        delayed[due] = bucket = []
                    bucket.append((inst, key0, value))
                    bucket.append((inst, key1, 0))
            return fire_load

        if op is Op.STORE:
            array = p.attrs["array"]
            mem_store = self.memory.store
            imm0 = imms.get(0)
            imm1 = imms.get(1)
            cache_store = (self._cache.access_store
                           if self._cache is not None else None)

            if cache_store is not None:
                def fire_store_cached(inst):
                    entry = inst.wait.pop(op_id, _NO_ENTRY)
                    inst.fired.add(op_id)
                    addr = entry[0] if 0 in entry else imm0
                    value = entry[1] if 1 in entry else imm1
                    mem_store(array, addr, value)
                    cache_store(array, addr)
                    inst.env[key0] = 0
                    for d in cons0:
                        append((inst, d, 0))
                    livebox[0] += d0
                    if inst.subs:
                        subs = inst.subs.pop(key0, None)
                        if subs:
                            for target, target_key in subs:
                                forward(target, target_key, 0)
                return fire_store_cached

            def fire_store(inst):
                entry = inst.wait.pop(op_id, _NO_ENTRY)
                inst.fired.add(op_id)
                addr = entry[0] if 0 in entry else imm0
                value = entry[1] if 1 in entry else imm1
                mem_store(array, addr, value)
                inst.env[key0] = 0
                for d in cons0:
                    append((inst, d, 0))
                livebox[0] += d0
                if inst.subs:
                    subs = inst.subs.pop(key0, None)
                    if subs:
                        for target, target_key in subs:
                            forward(target, target_key, 0)
            return fire_store

        info = OP_INFO[op]
        if not info.pure:
            op_name = op.value

            def fire_illegal(inst):
                raise SimulationError(f"cannot execute {op_name}")
            return fire_illegal

        # Pure arithmetic/logic: specialize the common shapes, keep a
        # generic closure for the rest (immediates, 3-ary).
        ev = info.evaluate
        n_in = len(p.inputs)

        if not imms and n_in == 2:
            def fire_pure2(inst):
                entry = inst.wait.pop(op_id)
                inst.fired.add(op_id)
                value = ev(entry[0], entry[1])
                inst.env[key0] = value
                for d in cons0:
                    append((inst, d, value))
                livebox[0] += d0
                if inst.subs:
                    subs = inst.subs.pop(key0, None)
                    if subs:
                        for target, target_key in subs:
                            forward(target, target_key, value)
            return fire_pure2

        if not imms and n_in == 1:
            def fire_pure1(inst):
                entry = inst.wait.pop(op_id)
                inst.fired.add(op_id)
                value = ev(entry[0])
                inst.env[key0] = value
                for d in cons0:
                    append((inst, d, value))
                livebox[0] += d0
                if inst.subs:
                    subs = inst.subs.pop(key0, None)
                    if subs:
                        for target, target_key in subs:
                            forward(target, target_key, value)
            return fire_pure1

        if n_in == 2 and len(imms) == 1:
            imm_port = 0 if 0 in imms else 1
            imm = imms[imm_port]
            token_port = 1 - imm_port

            if imm_port == 0:
                def fire_pure_limm(inst):
                    entry = inst.wait.pop(op_id)
                    inst.fired.add(op_id)
                    value = ev(imm, entry[token_port])
                    inst.env[key0] = value
                    for d in cons0:
                        append((inst, d, value))
                    livebox[0] += d0
                    if inst.subs:
                        subs = inst.subs.pop(key0, None)
                        if subs:
                            for target, target_key in subs:
                                forward(target, target_key, value)
                return fire_pure_limm

            def fire_pure_rimm(inst):
                entry = inst.wait.pop(op_id)
                inst.fired.add(op_id)
                value = ev(entry[token_port], imm)
                inst.env[key0] = value
                for d in cons0:
                    append((inst, d, value))
                livebox[0] += d0
                if inst.subs:
                    subs = inst.subs.pop(key0, None)
                    if subs:
                        for target, target_key in subs:
                            forward(target, target_key, value)
            return fire_pure_rimm

        def fire_pure(inst):
            entry = inst.wait.pop(op_id, _NO_ENTRY)
            inst.fired.add(op_id)
            value = ev(*[
                entry[port] if port in entry else imms[port]
                for port in range(n_in)
            ])
            inst.env[key0] = value
            for d in cons0:
                append((inst, d, value))
            livebox[0] += d0
            if inst.subs:
                subs = inst.subs.pop(key0, None)
                if subs:
                    for target, target_key in subs:
                        forward(target, target_key, value)
        return fire_pure

    # ------------------------------------------------------------------
    # Guard resolution
    # ------------------------------------------------------------------
    def _op_status(self, inst: _Instance, op_id: int) -> str:
        if op_id in inst.fired:
            return "fired"
        if op_id == inst.plan.term_id:
            return "pending"
        if self._guard_taken(inst, inst.plan.ops[op_id].guard) is False:
            return "untaken"
        return "pending"

    @staticmethod
    def _guard_taken(inst: _Instance, guard) -> Optional[bool]:
        result: Optional[bool] = True
        env = inst.env
        for key, sense in guard:
            if key not in env:
                result = None
                continue
            if bool(env[key]) != sense:
                return False
        return result

    # ------------------------------------------------------------------
    # Retirement (the retire loop itself is inlined in :meth:`run`)
    # ------------------------------------------------------------------
    def _maybe_release(self, inst: _Instance) -> None:
        # Pending subscriptions keep the object alive through Python
        # references from the producing chain; dropping it here only
        # bounds the bookkeeping table.
        if inst.done and inst.live_slices == 0:
            self._instances.pop(inst.iid, None)

    # ------------------------------------------------------------------
    # Fetch (the von Neumann block order)
    # ------------------------------------------------------------------
    def _fetch(self) -> bool:
        stack = self._stack
        if not stack:
            return False
        if len(self._retire) >= self.window:
            self._stall_window += 1
            return False
        top = stack[-1]
        inst, idx = top
        plan = inst.plan
        items = plan.items
        if idx >= len(items):
            return self._finish_instance(top)
        kind, payload = items[idx]
        if kind == "slice":
            self._fetch_slice(inst, payload)
            top[1] = idx + 1
            return True
        # A transfer point: stall until its control guard resolves.
        op_plan = plan.op(payload)
        taken = self._guard_taken(inst, op_plan.guard)
        if taken is None:
            self._stall_decider += 1
            return False
        top[1] = idx + 1
        if taken is False:
            return True
        callee_plan = self.plans[op_plan.callee]
        child = self._make_instance(callee_plan, inst, payload)
        env = inst.env
        publish = self._publish
        for kind, src, pkey in op_plan.bind_specs:
            if kind:  # BIND_KEY
                if src in env:
                    publish(child, pkey, env[src])
                else:
                    inst.subs.setdefault(src, []).append((child, pkey))
            else:
                publish(child, pkey, src)
        self._stack.append([child, 0])
        return True

    def _fetch_slice(self, inst: _Instance, slice_idx: int) -> None:
        inst.fetched.add(slice_idx)
        inst.live_slices += 1
        ops = inst.plan.slices[slice_idx]
        # Retire entry: [instance, slice ops, scan position] (the ops
        # list is carried so the retire scan does no plan lookups).
        self._retire.append([inst, ops, 0])
        armed = inst.armed
        dep = inst.dep
        ready_append = self._ready.append
        for op_id in ops:
            if op_id in armed:
                armed.discard(op_id)
                ready_append((inst, op_id))
            elif not dep[op_id][1]:
                # Only-literal inputs (loop term with literal decider).
                ready_append((inst, op_id))

    def _finish_instance(self, top: List) -> bool:
        inst: _Instance = top[0]
        plan = inst.plan
        if plan.kind is BlockKind.DAG:
            self._register_results(inst)
            inst.done = True
            self._stack.pop()
            self._maybe_release(inst)
            return True
        # Loop: wait for the backedge decider (wave-order stall).
        if not inst.term_fired:
            self._stall_decider += 1
            return False
        inst.done = True
        if inst.term_decision:
            nxt = self._make_instance(plan, inst.parent, inst.parent_spawn)
            env = inst.env
            publish = self._publish
            for kind, src, pkey in plan.next_arg_specs:
                if kind:  # BIND_KEY
                    if src in env:
                        publish(nxt, pkey, env[src])
                    else:
                        inst.subs.setdefault(src, []).append((nxt, pkey))
                else:
                    publish(nxt, pkey, src)
            top[0] = nxt
            top[1] = 0
            self._maybe_release(inst)
            return True
        self._register_results(inst)
        self._stack.pop()
        self._maybe_release(inst)
        return True
