"""Block-window machines (paper Sec. II-C).

Sequential architectures order execution along the dynamic block
(hyperblock/wave) sequence. The engine fetches *slices* of concurrent
blocks in depth-first (von Neumann) order, keeps at most ``window`` of
them in flight executing internally by the dataflow firing rule, and
retires them in order. Fetch stalls until the control flow that decides
the next slice resolves -- the paper's "instructions must wait for
their turn in the global block-order" (WaveScalar/TRIPS behavior).

* ``window=1, width=1`` models a sequential von Neumann CPU (1 IPC).
* ``window=k, width=W`` models sequential dataflow.
"""

from repro.sim.window.engine import WindowEngine

__all__ = ["WindowEngine"]
