"""Dynamic execution-graph recording (paper Figs. 4/5).

The paper visualizes executions as *dynamic execution graphs*: one
node per dynamic instruction, placed at the cycle it fired (width =
time), with black edges for token communication; the number of edges
crossing a vertical cut is the live state at that instant. With
``record_trace=True`` the tagged engine records exactly this graph,
and :func:`to_dot` / :func:`parallelism_profile` render it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _dot_escape(text: str) -> str:
    """Escape a value for a double-quoted Graphviz string."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


@dataclass
class TraceEvent:
    """One dynamic instruction firing."""

    event_id: int
    cycle: int
    node_id: int
    block: str
    op: str
    tag: object


@dataclass
class ExecutionTrace:
    """The dynamic execution graph of one run."""

    events: List[TraceEvent] = field(default_factory=list)
    #: (producer event, consumer event) token-flow edges.
    edges: List[Tuple[int, int]] = field(default_factory=list)
    #: Lazy (n_edges, sorted producer cycles, sorted consumer cycles)
    #: for :meth:`live_cut`; rebuilt when edges have been appended.
    _cut_index: Optional[Tuple[int, List[int], List[int]]] = field(
        default=None, repr=False, compare=False)

    def record(self, cycle: int, node_id: int, block: str, op: str,
               tag: object, input_sources: Dict[int, int]) -> int:
        event_id = len(self.events)
        self.events.append(
            TraceEvent(event_id, cycle, node_id, block, op, tag)
        )
        for src in input_sources.values():
            self.edges.append((src, event_id))
        return event_id

    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """Trace width: the number of cycles spanned (paper: time)."""
        if not self.events:
            return 0
        return max(e.cycle for e in self.events) + 1

    def parallelism_profile(self) -> List[int]:
        """Events per cycle (paper: trace height over time)."""
        profile = [0] * self.duration
        for e in self.events:
            profile[e.cycle] += 1
        return profile

    def live_cut(self, cycle: int) -> int:
        """Token edges crossing the vertical cut at ``cycle`` (the
        paper's definition of live state at an instant).

        An edge crosses the cut at ``cycle`` iff it was produced at or
        before ``cycle`` and consumed at or after it -- a token
        consumed at cycle *c* still crosses the cut at *c* (it is live
        until its consumer fires).

        Figure drivers sweep this over every cycle, so the edge
        endpoints are pre-sorted once per trace: each query is two
        bisections, O(log E), instead of a full edge rescan.
        """
        index = self._cut_index
        if index is None or index[0] != len(self.edges):
            by_id = self.events
            starts = sorted(by_id[src].cycle for src, _ in self.edges)
            ends = sorted(by_id[dst].cycle for _, dst in self.edges)
            index = (len(self.edges), starts, ends)
            self._cut_index = index
        _, starts, ends = index
        # produced at or before `cycle`, minus consumed strictly
        # before it (consumed-before implies produced-before, so the
        # difference is exactly the crossing count).
        return bisect_right(starts, cycle) - bisect_left(ends, cycle)

    def to_dot(self, max_events: int = 2000) -> str:
        """Graphviz rendering: columns are cycles, colors are
        concurrent blocks (like the paper's purple/yellow nodes)."""
        if len(self.events) > max_events:
            raise ValueError(
                f"trace too large to render ({len(self.events)} events;"
                f" limit {max_events}) -- use a smaller input"
            )
        palette = ["lightgoldenrod", "plum", "lightblue", "palegreen",
                   "lightsalmon", "khaki", "lightpink", "gainsboro"]
        blocks = sorted({e.block for e in self.events})
        color = {b: palette[i % len(palette)]
                 for i, b in enumerate(blocks)}
        lines = ["digraph trace {", "  rankdir=LR;",
                 '  node [style=filled, shape=box, fontsize=8];']
        by_cycle: Dict[int, List[TraceEvent]] = {}
        for e in self.events:
            by_cycle.setdefault(e.cycle, []).append(e)
        for cycle in sorted(by_cycle):
            lines.append("  { rank=same; "
                         f'"c{cycle}" [shape=plaintext, label="t={cycle}"];')
            for e in by_cycle[cycle]:
                # Escape op/block/tag: a `"` or `\` in any of them
                # would otherwise break out of the quoted label.
                label = (f"{_dot_escape(e.op)}\\n"
                         f"{_dot_escape(e.block)}"
                         f"#{_dot_escape(str(e.tag))}")
                lines.append(
                    f'    e{e.event_id} [label="{label}", '
                    f'fillcolor={color[e.block]}];'
                )
            lines.append("  }")
        cycles = sorted(by_cycle)
        for a, b in zip(cycles, cycles[1:]):
            lines.append(f'  "c{a}" -> "c{b}" [style=invis];')
        for src, dst in self.edges:
            lines.append(f"  e{src} -> e{dst};")
        lines.append("}")
        return "\n".join(lines)
