"""Tagged (unordered) dataflow machine.

The engine executes elaborated graphs; the :mod:`tag policy
<repro.sim.tagged.tagspace>` chooses between the paper's architectures:

* ``unordered`` -- unbounded global tag space (TTDA / Monsoon-like
  naive unordered dataflow);
* ``unordered-bounded`` -- bounded *global* tag pool with greedy
  allocation, which deadlocks on real programs (paper Fig. 11);
* ``tyr`` -- TYR's local tag spaces with ready-gated allocation and the
  tail-recursion spare tag (paper Secs. III-V);
* ``kbounded`` -- TTDA-style per-block pools with greedy allocation
  (paper Sec. VIII-A), safe only for simple loop structures.
"""

from repro.sim.tagged.engine import TaggedEngine
from repro.sim.tagged.tagspace import (
    BoundedGlobalPolicy,
    KBoundedPolicy,
    TagPolicy,
    TagPool,
    TyrPolicy,
    UnboundedGlobalPolicy,
)

__all__ = [
    "TaggedEngine",
    "TagPolicy",
    "TagPool",
    "TyrPolicy",
    "UnboundedGlobalPolicy",
    "BoundedGlobalPolicy",
    "KBoundedPolicy",
]
