"""Deadlock diagnosis for tagged dataflow (paper Fig. 11).

When a tagged machine quiesces with live tokens or pending allocations,
the engine raises :class:`repro.errors.DeadlockError` carrying a
:class:`DeadlockDiagnosis`, which records which allocations were
pending against which tag space (the red nodes of Fig. 11), how each
pool was occupied, and how many tokens were stranded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PendingAllocation:
    node_id: int
    block: str  # block whose tag space is exhausted
    parent_tag: object
    ready: bool
    spare: bool


@dataclass
class DeadlockDiagnosis:
    cycle: int
    live_tokens: int
    pending_allocations: List[PendingAllocation] = field(
        default_factory=list
    )
    pool_occupancy: Dict[str, Tuple[int, Optional[int]]] = field(
        default_factory=dict
    )  # pool name -> (in use, capacity)

    def describe(self) -> str:
        lines = [
            f"deadlock at cycle {self.cycle}: {self.live_tokens} live "
            f"tokens, {len(self.pending_allocations)} pending tag "
            f"allocations"
        ]
        for name, (used, cap) in sorted(self.pool_occupancy.items()):
            cap_s = "unbounded" if cap is None else str(cap)
            lines.append(f"  pool {name}: {used}/{cap_s} tags in use")
        by_space: Dict[str, int] = {}
        for p in self.pending_allocations:
            by_space[p.block] = by_space.get(p.block, 0) + 1
        for space, count in sorted(by_space.items()):
            lines.append(f"  {count} allocation(s) starved for {space!r}")
        return "\n".join(lines)
