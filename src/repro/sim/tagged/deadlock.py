"""Deadlock diagnosis for tagged dataflow (paper Fig. 11).

When a tagged machine quiesces with live tokens or pending allocations,
the engine raises :class:`repro.errors.DeadlockError` carrying a
:class:`DeadlockDiagnosis`. Beyond the raw occupancy dump (which
allocations were pending against which tag space, how each pool was
occupied, how many tokens were stranded), the diagnosis now embeds a
**wait-for graph** reconstructed at quiesce by :func:`analyze_deadlock`:

* ``alloc:<nid>@<tag>`` -- a pending tag allocation, waiting on a pool;
* ``pool:<name>`` -- a tag pool, waiting on the retirement of each tag
  it has handed out;
* ``ctx:<block>@<tag>`` -- a live context holding a tag, waiting on its
  own starved allocations (the free barrier joins them), on arguments
  from its allocator (if it was popped speculatively and its ready join
  has not fired), and on the results of contexts it spawned.

A cycle in this graph is the deadlock, reported edge by edge by
:meth:`DeadlockDiagnosis.explain`; when no cycle exists the reachable
*sink* contexts -- holders with no outstanding wait the allocation
rules know about -- are the starvation-without-cycle proof (the
signature of the ``drop="ready"`` ablation, where contexts received
tags before their inputs existed). The violated rule is classified
from the pools' ``honor_ready`` / ``honor_spare`` / ``gated`` flags,
which are authoritative: they are exactly what the ablation policies
toggle.

Every field is built from primitives (strings, ints, tuples) so a
diagnosis pickles across the remote-worker boundary byte-for-byte;
``__reduce__`` pins that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

#: Machine-readable verdicts for :attr:`DeadlockDiagnosis.violated_rule`.
RULE_READY = "ready"    # Lemma 1 (ready gating) was disabled
RULE_SPARE = "spare"    # Lemma 2 (spare-tag reserve) was disabled
RULE_GREEDY = "greedy"  # no gating at all (bounded greedy pool)
RULE_NONE = "none"      # all rules honored -- should be impossible

_RULE_TEXT = {
    RULE_READY: (
        "Lemma 1 (ready gating) disabled: tags were handed to "
        "contexts whose inputs did not yet exist, so holders cannot "
        "make progress and never retire"
    ),
    RULE_SPARE: (
        "Lemma 2 (spare-tag reserve) disabled: an external allocate "
        "consumed the tag reserved for a loop's backedge, so "
        "iterations already in flight cannot advance"
    ),
    RULE_GREEDY: (
        "no gated allocation: a bounded pool handed out its last tag "
        "to dependent work (the paper's Fig. 11 baseline)"
    ),
    RULE_NONE: (
        "all allocation rules were honored; under Theorem 2 this "
        "deadlock should be impossible -- please report it"
    ),
}


@dataclass
class PendingAllocation:
    node_id: int
    block: str  # block whose tag space is exhausted
    parent_tag: object
    ready: bool
    spare: bool
    #: Block the allocate node itself lives in (the waiting context's
    #: block); ``""`` on diagnoses from before the analyzer existed.
    parent_block: str = ""
    #: Gate arithmetic at quiesce: free tags available vs. tags the
    #: allocation rule demands (:meth:`TagPool.tags_needed`).
    free: int = 0
    need: int = 0

    def __reduce__(self):
        return (
            self.__class__,
            tuple(getattr(self, f.name) for f in fields(self)),
        )


@dataclass
class DeadlockDiagnosis:
    cycle: int
    live_tokens: int
    pending_allocations: List[PendingAllocation] = field(
        default_factory=list
    )
    pool_occupancy: Dict[str, Tuple[int, Optional[int]]] = field(
        default_factory=dict
    )  # pool name -> (in use, capacity)
    #: Allocation-policy description (``TyrPolicy.describe()`` etc.).
    policy: str = ""
    #: One of :data:`RULE_READY` / :data:`RULE_SPARE` /
    #: :data:`RULE_GREEDY` / :data:`RULE_NONE` (or ``""`` on legacy
    #: diagnoses built without the analyzer).
    violated_rule: str = ""
    #: Wait-for graph: node id -> human-readable label.
    wait_nodes: Dict[str, str] = field(default_factory=dict)
    #: Wait-for graph edges as ``(src, dst, why)`` triples.
    wait_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    #: The extracted wait cycle (node ids, first edge implied from the
    #: last back to the first), or ``None`` if no cycle exists.
    wait_cycle: Optional[List[str]] = None
    #: Starvation-without-cycle proof: reachable contexts that hold
    #: tags yet have no outstanding wait the allocation rules explain.
    starved_sinks: List[str] = field(default_factory=list)
    #: Set when the progress watchdog (not the quiesce check) tripped:
    #: consecutive zero-progress cycles observed before raising.
    watchdog_cycles: Optional[int] = None

    def __reduce__(self):
        return (
            self.__class__,
            tuple(getattr(self, f.name) for f in fields(self)),
        )

    # ------------------------------------------------------------------
    def culprits(self) -> List[str]:
        """Blocking regions (pool / block names), most culpable first.

        With a wait cycle: the regions on the cycle, in cycle order.
        Without one: the starved pools, then the blocks of the sink
        contexts that hold their tags.
        """
        names: List[str] = []

        def add(name: str) -> None:
            if name and name not in names:
                names.append(name)

        if self.wait_cycle:
            for node in self.wait_cycle:
                kind, _, rest = node.partition(":")
                if kind == "pool":
                    add(rest)
                elif kind == "ctx":
                    add(rest.rsplit("@", 1)[0])
        else:
            for p in self.pending_allocations:
                add(p.block)
            for node in self.starved_sinks:
                kind, _, rest = node.partition(":")
                if kind == "ctx":
                    add(rest.rsplit("@", 1)[0])
        return names

    def describe(self) -> str:
        lines = [
            f"deadlock at cycle {self.cycle}: {self.live_tokens} live "
            f"tokens, {len(self.pending_allocations)} pending tag "
            f"allocations"
        ]
        if self.watchdog_cycles is not None:
            lines[0] += (
                f" (progress watchdog: {self.watchdog_cycles} "
                f"consecutive cycles without progress)"
            )
        for name, (used, cap) in sorted(self.pool_occupancy.items()):
            cap_s = "unbounded" if cap is None else str(cap)
            lines.append(f"  pool {name}: {used}/{cap_s} tags in use")
        by_space: Dict[str, int] = {}
        for p in self.pending_allocations:
            by_space[p.block] = by_space.get(p.block, 0) + 1
        for space, count in sorted(by_space.items()):
            lines.append(f"  {count} allocation(s) starved for {space!r}")
        return "\n".join(lines)

    def explain(self) -> str:
        """Full report: culprits, wait cycle, violated rule."""
        lines = [self.describe()]
        if self.policy:
            lines.append(f"allocation policy: {self.policy}")
        if self.violated_rule:
            lines.append(
                f"violated rule: {_RULE_TEXT.get(self.violated_rule, self.violated_rule)}"
            )
        culprits = self.culprits()
        if culprits:
            lines.append("culprit regions: " + ", ".join(culprits))
        if self.wait_cycle:
            lines.append(
                f"wait cycle ({len(self.wait_cycle)} nodes):"
            )
            cyc = self.wait_cycle
            why = {(s, d): w for s, d, w in self.wait_edges}
            for i, node in enumerate(cyc):
                nxt = cyc[(i + 1) % len(cyc)]
                reason = why.get((node, nxt), "waits on")
                label = self.wait_nodes.get(node, node)
                lines.append(f"  {label}")
                lines.append(f"    --[{reason}]-->")
            lines.append(
                f"  back to {self.wait_nodes.get(cyc[0], cyc[0])}"
            )
        elif self.wait_nodes:
            lines.append(
                "no wait cycle: starvation without circular waiting"
            )
            for node in self.starved_sinks:
                lines.append(
                    f"  stuck holder: {self.wait_nodes.get(node, node)}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def analyze_deadlock(engine, watchdog: Optional[int] = None
                     ) -> DeadlockDiagnosis:
    """Reconstruct the wait-for graph from a quiesced tagged engine.

    Reads only the engine's public-ish tables (``_alloc_state``,
    ``pool.holders``, node attribute tables); it never mutates state,
    so it is safe to call from the watchdog on a machine that is not
    fully quiesced.
    """
    diag = DeadlockDiagnosis(
        cycle=engine.metrics.cycles,
        live_tokens=engine._livebox[0],
        pool_occupancy={
            p.name: (p.in_use, p.capacity)
            for p in engine._unique_pools
        },
        policy=engine.policy.describe(),
        watchdog_cycles=watchdog,
    )

    nodes: Dict[str, str] = {}
    edges: Dict[Tuple[str, str], str] = {}

    def ctx_id(block: str, tag: object) -> str:
        return f"ctx:{block}@{tag}"

    def add_edge(src: str, dst: str, why: str) -> None:
        edges.setdefault((src, dst), why)

    # Tag provenance: (alloc nid, parent tag) -> (child block, tag).
    child_of: Dict[Tuple[int, object], Tuple[str, object]] = {}
    for pool in engine._unique_pools:
        if pool.capacity is None:
            continue
        pool_node = f"pool:{pool.name}"
        cap = pool.capacity
        nodes[pool_node] = (
            f"tag pool {pool.name} ({pool.in_use}/{cap} in use)"
        )
        for tag, (anid, ptag) in pool.holders.items():
            block = engine._attrs[anid]["tagspace"]
            child_of[(anid, ptag)] = (block, tag)

    # Context nodes for every held tag, plus edges: the pool waits on
    # each holder's retirement; a holder whose ready join has not
    # fired waits on its allocator's context for its arguments; every
    # allocator context waits on the results of contexts it spawned
    # into *other* blocks (their result joins feed its free barrier).
    for pool in engine._unique_pools:
        if pool.capacity is None:
            continue
        pool_node = f"pool:{pool.name}"
        for tag, (anid, ptag) in pool.holders.items():
            block = engine._attrs[anid]["tagspace"]
            cnode = ctx_id(block, tag)
            pblock = engine._block[anid]
            st = engine._alloc_state.get((anid, ptag))
            speculative = st is not None and st.popped and not st.ready
            label = (
                f"context {block}@{tag} (spawned by allocate #{anid} "
                f"from {pblock}@{ptag}"
            )
            if speculative:
                label += ", still awaiting its arguments"
            nodes[cnode] = label + ")"
            add_edge(pool_node, cnode,
                     f"tag {tag} not retired")
            pnode = ctx_id(pblock, ptag)
            nodes.setdefault(
                pnode, f"context {pblock}@{ptag}"
            )
            if speculative:
                # The child popped before its inputs existed; it can
                # do nothing until the allocator context produces them.
                add_edge(cnode, pnode,
                         "awaits arguments from its allocator")
            if pblock != block:
                # External spawn: the allocator's free barrier joins
                # the child's results, so it waits for the child.
                add_edge(pnode, cnode,
                         "awaits results of spawned context")

    # Pending (un-popped) allocations: the waiting context's free
    # barrier joins the allocate's outputs, so the context waits on
    # the allocation, and the allocation waits on its starved pool.
    for (nid, ptag), st in engine._alloc_state.items():
        if not (st.request and not st.popped):
            continue
        pool = engine._alloc_pool[nid]
        spare = engine._alloc_spare[nid]
        need = pool.tags_needed(st.ready, spare)
        free = pool.free_count if pool.capacity is not None else 0
        pblock = engine._block[nid]
        diag.pending_allocations.append(PendingAllocation(
            node_id=nid,
            block=pool.name,
            parent_tag=ptag,
            ready=st.ready,
            spare=spare,
            parent_block=pblock,
            free=free,
            need=need,
        ))
        anode = f"alloc:{nid}@{ptag}"
        kind = "ready" if st.ready else "speculative"
        if spare:
            kind += ", spare"
        nodes[anode] = (
            f"allocate #{nid} in {pblock}@{ptag} -> "
            f"{engine._attrs[nid]['tagspace']} ({kind}; needs {need} "
            f"free, {free} available)"
        )
        pool_node = f"pool:{pool.name}"
        if pool_node not in nodes:
            cap_s = ("unbounded" if pool.capacity is None
                     else str(pool.capacity))
            nodes[pool_node] = (
                f"tag pool {pool.name} ({pool.in_use}/{cap_s} in use)"
            )
        add_edge(anode, pool_node,
                 f"starved: needs {need} free, has {free}")
        pnode = ctx_id(pblock, ptag)
        nodes.setdefault(pnode, f"context {pblock}@{ptag}")
        add_edge(pnode, anode, "free barrier joins this allocate")

    diag.wait_nodes = nodes
    diag.wait_edges = [(s, d, w) for (s, d), w in edges.items()]

    # Cycle extraction: DFS from each starved allocation. The cycle,
    # if any, is the deadlock; otherwise the reachable sinks prove
    # starvation without circular waiting.
    adj: Dict[str, List[str]] = {}
    for (s, d), _ in edges.items():
        adj.setdefault(s, []).append(d)
    starts = [f"alloc:{p.node_id}@{p.parent_tag}"
              for p in diag.pending_allocations]
    diag.wait_cycle = _find_cycle(adj, starts)
    if diag.wait_cycle is None:
        sinks: List[str] = []
        seen: set = set()
        stack = list(starts)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            succs = adj.get(node, [])
            if not succs and node.startswith("ctx:"):
                sinks.append(node)
            stack.extend(succs)
        diag.starved_sinks = sorted(sinks)

    # Classify the violated rule from the starved pools' flags --
    # authoritative, because the ablation policies toggle exactly
    # these flags.
    starved_pools = {engine._alloc_pool[p.node_id]
                     for p in diag.pending_allocations}
    if any(not p.honor_ready for p in starved_pools):
        diag.violated_rule = RULE_READY
    elif any(not p.honor_spare for p in starved_pools):
        diag.violated_rule = RULE_SPARE
    elif any(not p.gated and p.capacity is not None
             for p in starved_pools):
        diag.violated_rule = RULE_GREEDY
    else:
        diag.violated_rule = RULE_NONE
    return diag


def _find_cycle(adj: Dict[str, List[str]],
                starts: List[str]) -> Optional[List[str]]:
    """Iterative DFS cycle extraction reachable from ``starts``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    for root in starts:
        if color.get(root, WHITE) is not WHITE:
            continue
        path: List[str] = []
        stack: List[Tuple[str, int]] = [(root, 0)]
        while stack:
            node, i = stack.pop()
            if i == 0:
                color[node] = GREY
                path.append(node)
            succs = adj.get(node, [])
            advanced = False
            while i < len(succs):
                nxt = succs[i]
                i += 1
                c = color.get(nxt, WHITE)
                if c == GREY:
                    # Found a back edge: slice the cycle out of path.
                    start = path.index(nxt)
                    return path[start:]
                if c == WHITE:
                    stack.append((node, i))
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
    return None
