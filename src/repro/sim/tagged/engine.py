"""Execution engine for tagged (unordered) dataflow graphs.

Idealized timing per the paper's methodology (Sec. VI): every
instruction takes one cycle, up to ``issue_width`` instructions fire
per cycle (multiple dynamic instances of the same static instruction
may fire together), and tokens produced in a cycle become visible the
next cycle. IPC and live-token counts are sampled every cycle.

Token matching is the textbook wait-match store: tokens are buffered
per (static instruction, tag) until the firing rule is satisfied.
``allocate`` follows TYR's special firing rule (paper Sec. IV-A); its
interaction with the tag pools is what differentiates the architectures
(see :mod:`repro.sim.tagged.tagspace`).

Hot-path layout (see docs/ARCHITECTURE.md, "Simulator performance"):
the wait-match store is *slot-indexed* -- one store per static
instruction, keyed by tag -- instead of one dict keyed by
``(nid, tag)`` tuples; firing goes through a per-node dispatch table
of closures specialized at construction (no per-firing branching on
``Op``); emission appends into a persistent pending buffer whose
``append`` is captured once per node; and trace/occupancy
instrumentation is selected once at construction, so the default
configuration pays nothing for it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError, TokenBoundExceeded
from repro.compiler.graph import TaggedGraph
from repro.ir.ops import OP_INFO, Op
from repro.sim.latency import load_delay
from repro.sim.memory import Memory
from repro.sim.metrics import ExecutionResult, MetricsRecorder
from repro.sim.profile import EngineProfiler
from repro.sim.tagged.deadlock import analyze_deadlock
from repro.sim.tagged.trace import ExecutionTrace
from repro.sim.tagged.tagspace import PoolStats, TagPolicy, TagPool
from repro.sim.watchdog import watchdog_horizon

#: Tag of the machine-level root context (never allocated from a pool).
ROOT_TAG = -1

# Ready-queue actions.
_FIRE = 0
_ALLOC_POP = 1
_ALLOC_CTL = 2

# Deposit kinds (per-node firing-rule selector for the drain loop).
_DEP_PLAIN = 0
_DEP_MERGE = 1
_DEP_ALLOC = 2


class _AllocState:
    __slots__ = ("request", "ready", "popped", "scheduled",
                 "ctl_scheduled", "waiting")

    def __init__(self):
        self.request = False
        self.ready = False
        self.popped = False
        self.scheduled = False
        self.ctl_scheduled = False
        self.waiting = False


class TaggedEngine:
    """Simulates one execution of an elaborated graph.

    The engine binds ``memory`` and the graph tables into per-node
    closures at construction; neither may be swapped afterwards.
    """

    def __init__(self, graph: TaggedGraph, memory: Memory,
                 policy: TagPolicy, issue_width: int = 128,
                 sample_traces: bool = True,
                 check_token_bound: bool = False,
                 track_occupancy: bool = False,
                 record_trace: bool = False,
                 load_latency: int = 1,
                 max_cycles: int = 50_000_000,
                 profile: bool = False,
                 kernels=None,
                 cache=None):
        self.graph = graph
        self.memory = memory
        self.policy = policy
        self.issue_width = issue_width
        self.load_latency = load_latency
        self.max_cycles = max_cycles
        #: Optional stateful cache model (repro.sim.cache.CacheModel);
        #: when set, load delays come from cache probes instead of the
        #: load_delay hash and stores probe it too.
        self._cache = cache
        #: First cycle index no longer stalled by the latest last-level
        #: miss (cache mode only); the profiled loop splits its
        #: memory_stall attribution into hit/miss at this boundary.
        self._miss_until: List[int] = [0]
        self.metrics = MetricsRecorder(sample_traces=sample_traces)
        #: Opt-in stall/hotspot attribution; ``run`` selects a
        #: profiled cycle loop iff this is set, so the default path
        #: carries no profiling branches.
        self._profiler = EngineProfiler() if profile else None

        self.pools: Dict[str, TagPool] = policy.build_pools(
            graph.blocks, graph.tag_overrides
        )
        self._unique_pools: List[TagPool] = []
        seen = set()
        for pool in self.pools.values():
            if id(pool) not in seen:
                seen.add(id(pool))
                self._unique_pools.append(pool)

        # Flattened node tables for speed.
        n = len(graph.nodes)
        self._op: List[Op] = [nd.op for nd in graph.nodes]
        self._imms: List[Dict[int, object]] = [nd.imms for nd in graph.nodes]
        self._edges: List[List[List[Tuple[int, int]]]] = [
            nd.out_edges for nd in graph.nodes
        ]
        self._n_token_ports: List[int] = [
            len(nd.token_ports) for nd in graph.nodes
        ]
        self._n_inputs: List[int] = [nd.n_inputs for nd in graph.nodes]
        self._attrs: List[Dict[str, object]] = [
            nd.attrs for nd in graph.nodes
        ]
        self._block: List[str] = [nd.block for nd in graph.nodes]
        self._alloc_pool: Dict[int, TagPool] = {}
        self._alloc_spare: Dict[int, bool] = {}
        self._free_pool: Dict[int, TagPool] = {}
        for nd in graph.nodes:
            if nd.op is Op.ALLOCATE:
                self._alloc_pool[nd.node_id] = self.pools[
                    nd.attrs["tagspace"]
                ]
                self._alloc_spare[nd.node_id] = bool(nd.attrs["spare"])
            elif nd.op is Op.FREE:
                self._free_pool[nd.node_id] = self.pools[
                    nd.attrs["tagspace"]
                ]

        # Dynamic state. The containers below are captured by the
        # per-node closures and MUST stay the same objects for the
        # engine's lifetime (mutate in place, never rebind).
        #: Slot-indexed wait-match store: node id -> tag -> {port: data}.
        self._wait: List[Dict[object, Dict[int, object]]] = [
            {} for _ in range(n)
        ]
        self._alloc_state: Dict[Tuple[int, object], _AllocState] = {}
        self._ready: Deque[Tuple[int, object, int]] = deque()
        self._pending: List[tuple] = []
        self._waiters: Dict[int, Deque[Tuple[int, object]]] = {
            id(p): deque() for p in self._unique_pools
        }
        self._dirty_pools: List[TagPool] = []
        #: cycle index -> pending deposits maturing that cycle (loads
        #: in flight under load_latency > 1).
        self._delayed: Dict[int, List[tuple]] = {}
        self._livebox: List[int] = [0]
        self._results: Dict[int, object] = {}

        # Optional dynamic-execution-graph recording (paper Figs. 4/5):
        # every firing becomes an event; token flows become edges.
        self.trace = ExecutionTrace() if record_trace else None
        self._cur_event = -1  # event id of the instruction now firing
        #: (nid, tag) -> {port: producing event id} (tracing only).
        self._wait_src: Dict[Tuple[int, object], Dict[int, int]] = {}

        # Optional per-tag-space wait-match store occupancy tracking
        # (the paper's "Problem #2": token store implementability).
        self._track_occupancy = track_occupancy
        self._occupancy: Dict[str, int] = {}
        self._peak_occupancy: Dict[str, int] = {}
        if track_occupancy:
            for b in list(graph.blocks) + ["<root>"]:
                self._occupancy[b] = 0
                self._peak_occupancy[b] = 0

        self._token_bound: Optional[int] = None
        if check_token_bound:
            caps = [p.capacity for p in self._unique_pools]
            if all(c is not None for c in caps):
                # Theorem 2: T*N*M with T the largest tag space, plus
                # the root context's tokens.
                t = max(caps)
                self._token_bound = (
                    graph.token_bound(t) + graph.max_inputs * n
                )

        # Instrumentation is selected exactly once, here: the fast
        # path (the default) carries no trace/occupancy conditionals
        # at all; pending tokens are 4-tuples. The instrumented path
        # threads the producing event id through 5-tuples.
        self._instrumented = record_trace or track_occupancy
        #: Generated plan kernels (repro.sim.codegen). Used only on
        #: the uninstrumented, unprofiled fast path; every other
        #: configuration falls back to the interpreted closures, which
        #: remain the reference semantics.
        self._kernels = None
        if self._instrumented:
            self._drain = self._drain_pending_instr
            self._emit = self._emit_instr
            self._fire_fns: List[Callable] = [
                (lambda tag, nid=nid: self._fire_instr(nid, tag))
                for nid in range(n)
            ]
        else:
            self._drain = self._drain_pending_fast
            self._emit = self._emit_fast
            if kernels is not None and self._profiler is None:
                self._kernels = kernels
                self._fire_fns = kernels.ns["bind_fires"](self)
            else:
                self._fire_fns = [
                    self._make_fire(nid) for nid in range(n)
                ]
        #: Firing-rule selector used by the deposit drain loop.
        self._dkind: List[int] = [
            _DEP_ALLOC if op is Op.ALLOCATE
            else _DEP_MERGE if op is Op.MERGE
            else _DEP_PLAIN
            for op in self._op
        ]
        #: Per-node deposit table: (kind, wait store, #token ports,
        #: imms) in one slot so the drain loop does one fetch per token.
        self._dep = [
            (self._dkind[nid], self._wait[nid],
             self._n_token_ports[nid], self._imms[nid])
            for nid in range(n)
        ]

    # ------------------------------------------------------------------
    # ``_live`` stays addressable for diagnostics/tests while the hot
    # closures mutate the underlying one-slot box directly.
    @property
    def _live(self) -> int:
        return self._livebox[0]

    @_live.setter
    def _live(self, value: int) -> None:
        self._livebox[0] = value

    # ------------------------------------------------------------------
    def run(self, args: List[object]) -> ExecutionResult:
        if len(args) != len(self.graph.entry_sources):
            raise SimulationError(
                f"entry takes {len(self.graph.entry_sources)} args, "
                f"got {len(args)}"
            )
        pending = self._pending
        for value, dests in zip(args, self.graph.entry_sources):
            for dest_id, port in dests:
                if self._instrumented:
                    pending.append((dest_id, port, ROOT_TAG, value, -1))
                else:
                    pending.append((dest_id, port, ROOT_TAG, value))
                self._livebox[0] += 1
        self._apply_pending()

        if self._profiler is not None:
            completed = self._run_loop_profiled()
        elif self._kernels is not None:
            completed = self._kernels.ns["run_loop"](self)
        else:
            completed = self._run_loop()

        results = tuple(
            self._results.get(i)
            for i in range(len(self.graph.result_nodes))
        )
        extra = {
            "policy": self.policy.describe(),
            "issue_width": self.issue_width,
            "peak_store_occupancy": dict(self._peak_occupancy),
            "pool_stats": [
                PoolStats(p.name, p.capacity, p.peak_in_use,
                          p.total_allocations)
                for p in self._unique_pools
            ],
            "leftover_tags_in_use": sum(
                p.in_use for p in self._unique_pools
            ),
        }
        if self._profiler is not None:
            op = self._op
            block = self._block
            extra["profile"] = self._profiler.finish(
                "tagged", self.metrics.cycles,
                self.metrics.instructions,
                lambda nid: f"{op[nid].value}@{block[nid]}#{nid}",
            )
        return self.metrics.result("tagged", completed, results, extra)

    def _run_loop(self) -> bool:
        """The default (unprofiled) cycle loop."""
        metrics = self.metrics
        sample = metrics.sample
        ready = self._ready
        livebox = self._livebox
        run_cycle = self._run_cycle
        token_bound = self._token_bound
        max_cycles = self.max_cycles
        wd_horizon = watchdog_horizon(max_cycles)
        idle_streak = 0
        while True:
            if not ready:
                if self._delayed:
                    # Memory in flight: burn cycles until it returns.
                    self._stall_for_memory()
                    continue
                if self._is_finished():
                    return True
                self._raise_deadlock()
            fired = run_cycle()
            sample(fired, livebox[0])
            if fired:
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak >= wd_horizon and not self._delayed:
                    self._raise_deadlock(watchdog=idle_streak)
            if (token_bound is not None
                    and livebox[0] > token_bound):
                raise TokenBoundExceeded(
                    f"live tokens {livebox[0]} exceed Theorem 2 bound "
                    f"{token_bound}"
                )
            if metrics.cycles >= max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles}"
                )

    def _run_loop_profiled(self) -> bool:
        """The cycle loop with stall/hotspot attribution.

        Identical timing and semantics to :meth:`_run_loop` (the
        profiler only observes); every ``sample`` pairs with exactly
        one ``end_cycle`` and every ``sample_idle`` batch with one
        ``idle``, which is what makes the reason counts sum to
        ``cycles``.
        """
        prof = self._profiler
        end_cycle = prof.end_cycle
        metrics = self.metrics
        sample = metrics.sample
        ready = self._ready
        livebox = self._livebox
        run_cycle = self._run_cycle_profiled
        token_bound = self._token_bound
        max_cycles = self.max_cycles
        wd_horizon = watchdog_horizon(max_cycles)
        idle_streak = 0
        miss_until = self._miss_until if self._cache is not None \
            else None
        while True:
            if not ready:
                if self._delayed:
                    before = metrics.cycles
                    self._stall_for_memory()
                    if miss_until is None:
                        prof.idle("memory_stall",
                                  metrics.cycles - before)
                    else:
                        n = metrics.cycles - before
                        miss = min(metrics.cycles, miss_until[0]) \
                            - before
                        prof.idle_memory(n, max(0, min(n, miss)))
                    continue
                if self._is_finished():
                    return True
                self._raise_deadlock()
            fired, width_limited, tag_blocked = run_cycle()
            sample(fired, livebox[0])
            if fired:
                end_cycle("width_limited" if width_limited
                          else "fired")
            elif tag_blocked:
                end_cycle("tag_starved")
            elif livebox[0] > 0 or self._pending or self._delayed:
                end_cycle("waiting_operands")
            else:
                end_cycle("idle")
            if fired:
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak >= wd_horizon and not self._delayed:
                    self._raise_deadlock(watchdog=idle_streak)
            if (token_bound is not None
                    and livebox[0] > token_bound):
                raise TokenBoundExceeded(
                    f"live tokens {livebox[0]} exceed Theorem 2 bound "
                    f"{token_bound}"
                )
            if metrics.cycles >= max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles}"
                )

    def _stall_for_memory(self) -> None:
        """Idle until the earliest in-flight load response matures.

        Equivalent to sampling ``(0, live)`` once per stalled cycle,
        but batched; unlike the original per-cycle loop it enforces
        ``max_cycles`` and the Theorem-2 token bound, so a simulation
        can no longer spin past its cycle budget inside a memory
        stall.
        """
        metrics = self.metrics
        due = min(self._delayed)
        live = self._livebox[0]
        if self.max_cycles <= due:
            metrics.sample_idle(live, self.max_cycles - metrics.cycles)
            raise SimulationError(
                f"exceeded max_cycles={self.max_cycles}"
            )
        metrics.sample_idle(live, due + 1 - metrics.cycles)
        if self._token_bound is not None and live > self._token_bound:
            raise TokenBoundExceeded(
                f"live tokens {live} exceed Theorem 2 bound "
                f"{self._token_bound}"
            )
        if metrics.cycles >= self.max_cycles:
            raise SimulationError(
                f"exceeded max_cycles={self.max_cycles}"
            )
        self._pending.extend(self._delayed.pop(due))
        self._drain()

    # ------------------------------------------------------------------
    def _is_finished(self) -> bool:
        return (not self._pending and not self._delayed
                and self._livebox[0] == 0 and not self._alloc_state)

    def _raise_deadlock(self, watchdog: "int | None" = None) -> None:
        diagnosis = analyze_deadlock(self, watchdog=watchdog)
        raise DeadlockError(diagnosis.describe(), diagnosis)

    # ------------------------------------------------------------------
    def _run_cycle(self) -> int:
        fired = 0
        budget = self.issue_width
        ready = self._ready
        popleft = ready.popleft
        fire_fns = self._fire_fns
        while ready and budget > 0:
            nid, tag, action = popleft()
            if action == _FIRE:
                fire_fns[nid](tag)
                fired += 1
                budget -= 1
            elif action == _ALLOC_POP:
                if self._fire_alloc_pop(nid, tag):
                    fired += 1
                    budget -= 1
            else:  # _ALLOC_CTL
                self._fire_alloc_ctl(nid, tag)
                fired += 1
                budget -= 1
        self._apply_pending()
        return fired

    def _run_cycle_profiled(self) -> Tuple[int, bool, bool]:
        """:meth:`_run_cycle` plus attribution signals.

        Returns ``(fired, width_limited, tag_blocked)``:
        ``width_limited`` when ready work remained after the issue
        budget ran out, ``tag_blocked`` when an allocate pop failed on
        an exhausted tag pool this cycle.
        """
        prof_fire = self._profiler.fire
        fired = 0
        budget = self.issue_width
        ready = self._ready
        popleft = ready.popleft
        fire_fns = self._fire_fns
        tag_blocked = False
        while ready and budget > 0:
            nid, tag, action = popleft()
            if action == _FIRE:
                fire_fns[nid](tag)
                fired += 1
                budget -= 1
                prof_fire(nid)
            elif action == _ALLOC_POP:
                if self._fire_alloc_pop(nid, tag):
                    fired += 1
                    budget -= 1
                    prof_fire(nid)
                else:
                    tag_blocked = True
            else:  # _ALLOC_CTL
                self._fire_alloc_ctl(nid, tag)
                fired += 1
                budget -= 1
                prof_fire(nid)
        width_limited = budget == 0 and bool(ready)
        self._apply_pending()
        return fired, width_limited, tag_blocked

    def _apply_pending(self) -> None:
        matured = self._delayed.pop(self.metrics.cycles, None)
        if matured:
            self._pending.extend(matured)
        if self._pending:
            self._drain()
        if self._dirty_pools:
            dirty = self._dirty_pools[:]
            del self._dirty_pools[:]
            for pool in dirty:
                self._wake_waiters(pool)

    def _drain_pending_fast(self) -> None:
        """Deposit every buffered token (fast path, 4-tuples).

        ``_dep`` packs each node's firing-rule selector, wait-store
        slot, token-port count, and immediates into one tuple so a
        deposit costs a single table fetch.
        """
        pending = self._pending
        dep = self._dep
        ready_append = self._ready.append
        for nid, port, tag, data in pending:
            kind, store, n_ports, imms = dep[nid]
            if kind == _DEP_PLAIN:
                entry = store.get(tag)
                if entry is None:
                    store[tag] = {port: data}
                    if n_ports == 1:
                        ready_append((nid, tag, _FIRE))
                else:
                    entry[port] = data
                    if len(entry) == n_ports:
                        ready_append((nid, tag, _FIRE))
            elif kind == _DEP_MERGE:
                entry = store.get(tag)
                if entry is None:
                    store[tag] = entry = {}
                entry[port] = data
                if 0 in entry:
                    want = 1 if entry[0] else 2
                    if want in entry or want in imms:
                        ready_append((nid, tag, _FIRE))
            else:  # _DEP_ALLOC
                self._deposit_alloc(nid, port, tag)
        del pending[:]

    def _drain_pending_instr(self) -> None:
        """Deposit every buffered token (instrumented, 5-tuples)."""
        pending = self._pending[:]
        del self._pending[:]
        for nid, port, tag, data, src in pending:
            self._deposit_instr(nid, port, tag, data, src)

    # ------------------------------------------------------------------
    def _emit_fast(self, nid: int, port: int, tag: object,
                   data: object) -> None:
        edges = self._edges[nid][port]
        if not edges:
            return  # token discarded (no consumers)
        append = self._pending.append
        for dest_id, dest_port in edges:
            append((dest_id, dest_port, tag, data))
        self._livebox[0] += len(edges)

    def _emit_instr(self, nid: int, port: int, tag: object,
                    data: object) -> None:
        edges = self._edges[nid][port]
        if not edges:
            return
        append = self._pending.append
        src = self._cur_event
        for dest_id, dest_port in edges:
            append((dest_id, dest_port, tag, data, src))
        self._livebox[0] += len(edges)

    def _deposit_instr(self, nid: int, port: int, tag: object,
                       data: object, src: int = -1) -> None:
        op = self._op[nid]
        if self.trace is not None and src >= 0:
            self._wait_src.setdefault((nid, tag), {})[port] = src
        if op is Op.ALLOCATE:
            self._deposit_alloc(nid, port, tag)
            return
        store = self._wait[nid]
        entry = store.get(tag)
        if entry is None:
            entry = {}
            store[tag] = entry
        entry[port] = data
        if self._track_occupancy:
            block = self._block[nid]
            occ = self._occupancy[block] + 1
            self._occupancy[block] = occ
            if occ > self._peak_occupancy[block]:
                self._peak_occupancy[block] = occ
        if op is Op.MERGE:
            if 0 in entry:
                want = 1 if entry[0] else 2
                if want in entry or want in self._imms[nid]:
                    self._ready.append((nid, tag, _FIRE))
        elif len(entry) == self._n_token_ports[nid]:
            self._ready.append((nid, tag, _FIRE))

    # ------------------------------------------------------------------
    # Allocate state machine (paper Sec. IV-A firing rule)
    # ------------------------------------------------------------------
    def _deposit_alloc(self, nid: int, port: int, tag: object) -> None:
        key = (nid, tag)
        st = self._alloc_state.get(key)
        if st is None:
            st = _AllocState()
            self._alloc_state[key] = st
        if port == 0:
            st.request = True
        else:
            st.ready = True
            if st.popped and not st.ctl_scheduled:
                st.ctl_scheduled = True
                self._ready.append((nid, tag, _ALLOC_CTL))
                return
        if st.request and not st.popped and not st.scheduled:
            pool = self._alloc_pool[nid]
            if pool.can_pop(st.ready, self._alloc_spare[nid]):
                st.scheduled = True
                # A stale queue entry (if any) is skipped by
                # _wake_waiters since waiting is cleared here.
                st.waiting = False
                self._ready.append((nid, tag, _ALLOC_POP))
            elif not st.waiting:
                st.waiting = True
                self._waiters[id(pool)].append(key)

    def _fire_alloc_pop(self, nid: int, tag: object) -> bool:
        key = (nid, tag)
        st = self._alloc_state[key]
        pool = self._alloc_pool[nid]
        st.scheduled = False
        if not pool.can_pop(st.ready, self._alloc_spare[nid]):
            # Another allocation took the tag this cycle; wait for a
            # free.
            if not st.waiting:
                st.waiting = True
                self._waiters[id(pool)].append(key)
            return False
        if self.trace is not None:
            self._cur_event = self.trace.record(
                self.metrics.cycles, nid, self._block[nid],
                "allocate", tag,
                self._wait_src.pop((nid, tag), {}),
            )
        new_tag = pool.pop()
        if pool.capacity is not None:
            pool.holders[new_tag] = (nid, tag)
        st.popped = True
        st.waiting = False
        self._livebox[0] -= 1  # the request token is consumed
        self._emit(nid, 0, tag, new_tag)
        if st.ready:
            self._livebox[0] -= 1  # the ready token is consumed
            self._emit(nid, 1, tag, 0)
            del self._alloc_state[key]
        return True

    def _fire_alloc_ctl(self, nid: int, tag: object) -> None:
        key = (nid, tag)
        self._livebox[0] -= 1  # consume the late ready token
        self._emit(nid, 1, tag, 0)
        del self._alloc_state[key]

    def _wake_waiters(self, pool: TagPool) -> None:
        waiters = self._waiters[id(pool)]
        if not waiters:
            return
        still_waiting: Deque[Tuple[int, object]] = deque()
        while waiters:
            key = waiters.popleft()
            st = self._alloc_state.get(key)
            if st is None or st.popped or st.scheduled or not st.waiting:
                continue
            nid = key[0]
            if pool.can_pop(st.ready, self._alloc_spare[nid]):
                st.scheduled = True
                st.waiting = False
                self._ready.append((key[0], key[1], _ALLOC_POP))
            else:
                still_waiting.append(key)
        self._waiters[id(pool)] = still_waiting

    # ------------------------------------------------------------------
    # Ordinary instruction firing: per-node dispatch closures
    # ------------------------------------------------------------------
    def _make_fire(self, nid: int) -> Callable[[object], None]:
        """Build the firing closure for node ``nid`` (fast path).

        All per-node constants -- wait store slot, output edge lists,
        immediates, attributes, the pending buffer's ``append`` -- are
        bound here, once, so a firing does no table lookups and no
        opcode dispatch.
        """
        op = self._op[nid]
        store = self._wait[nid]
        livebox = self._livebox
        append = self._pending.append
        edges = self._edges[nid]
        imms = self._imms[nid]
        attrs = self._attrs[nid]
        n_in = self._n_inputs[nid]

        if op is Op.MERGE:
            edges0 = edges[0]
            n0 = len(edges0)

            def fire_merge(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                chosen = 1 if entry[0] else 2
                data = entry[chosen] if chosen in entry else imms[chosen]
                for d in edges0:
                    append((d[0], d[1], tag, data))
                livebox[0] += n0
            return fire_merge

        if op is Op.STEER:
            edges0, edges1 = edges[0], edges[1]
            n0, n1 = len(edges0), len(edges1)
            sense = bool(attrs["sense"])
            imm0, imm1 = imms.get(0), imms.get(1)

            def fire_steer(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                d = entry[0] if 0 in entry else imm0
                value = entry[1] if 1 in entry else imm1
                if bool(d) == sense:
                    for e in edges0:
                        append((e[0], e[1], tag, value))
                    livebox[0] += n0
                for e in edges1:
                    append((e[0], e[1], tag, 0))
                livebox[0] += n1
            return fire_steer

        if op is Op.LOAD:
            edges0, edges1 = edges[0], edges[1]
            n0, n1 = len(edges0), len(edges1)
            array = attrs["array"]
            mem_load = self.memory.load
            if self._cache is not None:
                cache_load = self._cache.access_load
                miss_latency = self._cache.miss_latency
                miss_until = self._miss_until
                metrics = self.metrics
                delayed = self._delayed

                def fire_load_cached(tag):
                    entry = store.pop(tag)
                    livebox[0] -= len(entry)
                    addr = entry[0] if 0 in entry else imms[0]
                    value = mem_load(array, addr)
                    delay = cache_load(array, addr)
                    if delay <= 1:
                        for e in edges0:
                            append((e[0], e[1], tag, value))
                        for e in edges1:
                            append((e[0], e[1], tag, 0))
                    else:
                        due = metrics.cycles + delay - 1
                        if delay >= miss_latency \
                                and due + 1 > miss_until[0]:
                            miss_until[0] = due + 1
                        bucket = delayed.get(due)
                        if bucket is None:
                            delayed[due] = bucket = []
                        for e in edges0:
                            bucket.append((e[0], e[1], tag, value))
                        for e in edges1:
                            bucket.append((e[0], e[1], tag, 0))
                    livebox[0] += n0 + n1
                return fire_load_cached

            if self.load_latency <= 1:
                def fire_load(tag):
                    entry = store.pop(tag)
                    livebox[0] -= len(entry)
                    addr = entry[0] if 0 in entry else imms[0]
                    value = mem_load(array, addr)
                    for e in edges0:
                        append((e[0], e[1], tag, value))
                    for e in edges1:
                        append((e[0], e[1], tag, 0))
                    livebox[0] += n0 + n1
                return fire_load

            latency = self.load_latency
            metrics = self.metrics
            delayed = self._delayed

            def fire_load_variable(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                addr = entry[0] if 0 in entry else imms[0]
                value = mem_load(array, addr)
                delay = load_delay(latency, array, addr)
                if delay <= 1:
                    for e in edges0:
                        append((e[0], e[1], tag, value))
                    for e in edges1:
                        append((e[0], e[1], tag, 0))
                else:
                    due = metrics.cycles + delay - 1
                    bucket = delayed.get(due)
                    if bucket is None:
                        delayed[due] = bucket = []
                    for e in edges0:
                        bucket.append((e[0], e[1], tag, value))
                    for e in edges1:
                        bucket.append((e[0], e[1], tag, 0))
                livebox[0] += n0 + n1
            return fire_load_variable

        if op is Op.STORE:
            edges0 = edges[0]
            n0 = len(edges0)
            array = attrs["array"]
            mem_store = self.memory.store
            if self._cache is not None:
                cache_store = self._cache.access_store

                def fire_store_cached(tag):
                    entry = store.pop(tag)
                    livebox[0] -= len(entry)
                    addr = entry[0] if 0 in entry else imms[0]
                    value = entry[1] if 1 in entry else imms[1]
                    mem_store(array, addr, value)
                    cache_store(array, addr)
                    for e in edges0:
                        append((e[0], e[1], tag, 0))
                    livebox[0] += n0
                return fire_store_cached

            def fire_store(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                addr = entry[0] if 0 in entry else imms[0]
                value = entry[1] if 1 in entry else imms[1]
                mem_store(array, addr, value)
                for e in edges0:
                    append((e[0], e[1], tag, 0))
                livebox[0] += n0
            return fire_store

        if op is Op.JOIN:
            edges0 = edges[0]
            n0 = len(edges0)

            def fire_join(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                value = entry[0] if 0 in entry else imms[0]
                for e in edges0:
                    append((e[0], e[1], tag, value))
                livebox[0] += n0
            return fire_join

        if op is Op.CHANGE_TAG:
            edges1 = edges[1]
            n1 = len(edges1)
            table = attrs.get("route_table")
            if table is None:
                edges0 = edges[0]
                n0 = len(edges0)

                def fire_change_tag(tag):
                    entry = store.pop(tag)
                    livebox[0] -= len(entry)
                    new_tag = entry[0] if 0 in entry else imms[0]
                    data = entry[1] if 1 in entry else imms[1]
                    for e in edges0:
                        append((e[0], e[1], new_tag, data))
                    livebox[0] += n0
                    for e in edges1:
                        append((e[0], e[1], tag, 0))
                    livebox[0] += n1
                return fire_change_tag

            # Dynamic-destination changeTag (multi-caller returns).
            table_get = table.get

            def fire_change_tag_routed(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                new_tag = entry[0] if 0 in entry else imms[0]
                data = entry[1] if 1 in entry else imms[1]
                ret = entry[2] if 2 in entry else imms[2]
                dests = table_get(ret, ())
                for e in dests:
                    append((e[0], e[1], new_tag, data))
                livebox[0] += len(dests)
                for e in edges1:
                    append((e[0], e[1], tag, 0))
                livebox[0] += n1
            return fire_change_tag_routed

        if op is Op.EXTRACT_TAG:
            edges0 = edges[0]
            n0 = len(edges0)

            def fire_extract_tag(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                for e in edges0:
                    append((e[0], e[1], tag, tag))
                livebox[0] += n0
            return fire_extract_tag

        if op is Op.FREE:
            pool = self._free_pool[nid]
            dirty = self._dirty_pools

            def fire_free(tag):
                entry = store.pop(tag)
                livebox[0] -= len(entry)
                pool.push(tag)
                if pool not in dirty:
                    dirty.append(pool)
            return fire_free

        info = OP_INFO[op]
        if not info.pure:
            op_name = op.value

            def fire_illegal(tag):
                raise SimulationError(f"cannot execute {op_name}")
            return fire_illegal

        # Pure arithmetic/logic: specialize the common shapes, keep a
        # generic closure for the rest (immediates, results, 3-ary).
        ev = info.evaluate
        edges0 = edges[0]
        n0 = len(edges0)
        result_idx = attrs.get("result_index")
        results = self._results

        if result_idx is None and not imms and n_in == 2:
            def fire_pure2(tag):
                entry = store.pop(tag)
                livebox[0] -= 2
                value = ev(entry[0], entry[1])
                for d in edges0:
                    append((d[0], d[1], tag, value))
                livebox[0] += n0
            return fire_pure2

        if result_idx is None and not imms and n_in == 1:
            def fire_pure1(tag):
                entry = store.pop(tag)
                livebox[0] -= 1
                value = ev(entry[0])
                for d in edges0:
                    append((d[0], d[1], tag, value))
                livebox[0] += n0
            return fire_pure1

        if result_idx is None and n_in == 2 and len(imms) == 1:
            if 0 in imms:
                imm0 = imms[0]

                def fire_pure_imm0(tag):
                    entry = store.pop(tag)
                    livebox[0] -= 1
                    value = ev(imm0, entry[1])
                    for d in edges0:
                        append((d[0], d[1], tag, value))
                    livebox[0] += n0
                return fire_pure_imm0
            imm1 = imms[1]

            def fire_pure_imm1(tag):
                entry = store.pop(tag)
                livebox[0] -= 1
                value = ev(entry[0], imm1)
                for d in edges0:
                    append((d[0], d[1], tag, value))
                livebox[0] += n0
            return fire_pure_imm1

        def fire_pure(tag):
            entry = store.pop(tag)
            livebox[0] -= len(entry)
            value = ev(*[
                entry[p] if p in entry else imms[p] for p in range(n_in)
            ])
            if result_idx is not None:
                results[result_idx] = value
            for d in edges0:
                append((d[0], d[1], tag, value))
            livebox[0] += n0
        return fire_pure

    # ------------------------------------------------------------------
    # Instrumented firing (trace / occupancy builds only)
    # ------------------------------------------------------------------
    def _fire_instr(self, nid: int, tag: object) -> None:
        op = self._op[nid]
        if self.trace is not None:
            self._cur_event = self.trace.record(
                self.metrics.cycles, nid, self._block[nid],
                self._op[nid].value, tag,
                self._wait_src.pop((nid, tag), {}),
            )
        entry = self._wait[nid].pop(tag)
        self._livebox[0] -= len(entry)
        if self._track_occupancy:
            self._occupancy[self._block[nid]] -= len(entry)
        imms = self._imms[nid]

        if op is Op.MERGE:
            d = entry[0]
            chosen = 1 if d else 2
            data = entry[chosen] if chosen in entry else imms[chosen]
            self._emit(nid, 0, tag, data)
            return
        if op is Op.STEER:
            d = entry.get(0, imms.get(0))
            value = entry.get(1, imms.get(1))
            attrs = self._attrs[nid]
            if bool(d) == bool(attrs["sense"]):
                self._emit(nid, 0, tag, value)
            self._emit(nid, 1, tag, 0)
            return

        # Assemble inputs in port order for the remaining ops.
        n_in = self._n_inputs[nid]
        inputs = [
            entry[p] if p in entry else imms[p] for p in range(n_in)
        ]
        if op is Op.LOAD:
            attrs = self._attrs[nid]
            value = self.memory.load(attrs["array"], inputs[0])
            if self._cache is not None:
                delay = self._cache.access_load(attrs["array"],
                                                inputs[0])
                if delay >= self._cache.miss_latency:
                    due_end = self.metrics.cycles + delay
                    if due_end > self._miss_until[0]:
                        self._miss_until[0] = due_end
            else:
                delay = load_delay(self.load_latency, attrs["array"],
                                   inputs[0])
            if delay <= 1:
                self._emit(nid, 0, tag, value)
                self._emit(nid, 1, tag, 0)
            else:
                due = self.metrics.cycles + delay - 1
                bucket = self._delayed.setdefault(due, [])
                src = self._cur_event
                for port, data in ((0, value), (1, 0)):
                    for dest_id, dest_port in self._edges[nid][port]:
                        bucket.append((dest_id, dest_port, tag, data,
                                       src))
                        self._livebox[0] += 1
        elif op is Op.STORE:
            attrs = self._attrs[nid]
            self.memory.store(attrs["array"], inputs[0], inputs[1])
            if self._cache is not None:
                self._cache.access_store(attrs["array"], inputs[0])
            self._emit(nid, 0, tag, 0)
        elif op is Op.JOIN:
            self._emit(nid, 0, tag, inputs[0])
        elif op is Op.CHANGE_TAG:
            table = self._attrs[nid].get("route_table")
            if table is None:
                self._emit(nid, 0, inputs[0], inputs[1])
            else:
                # Dynamic-destination changeTag (multi-caller returns).
                dests = table.get(inputs[2], ())
                if dests:
                    append = self._pending.append
                    src = self._cur_event
                    for dest_id, dest_port in dests:
                        append((dest_id, dest_port, inputs[0],
                                inputs[1], src))
                    self._livebox[0] += len(dests)
            self._emit(nid, 1, tag, 0)
        elif op is Op.EXTRACT_TAG:
            self._emit(nid, 0, tag, tag)
        elif op is Op.FREE:
            pool = self._free_pool[nid]
            pool.push(tag)
            if pool not in self._dirty_pools:
                self._dirty_pools.append(pool)
        else:
            info = OP_INFO[op]
            if not info.pure:
                raise SimulationError(f"cannot execute {op.value}")
            value = info.evaluate(*inputs)
            attrs = self._attrs[nid]
            idx = attrs.get("result_index")
            if idx is not None:
                self._results[idx] = value
            self._emit(nid, 0, tag, value)
