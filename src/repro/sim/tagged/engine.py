"""Execution engine for tagged (unordered) dataflow graphs.

Idealized timing per the paper's methodology (Sec. VI): every
instruction takes one cycle, up to ``issue_width`` instructions fire
per cycle (multiple dynamic instances of the same static instruction
may fire together), and tokens produced in a cycle become visible the
next cycle. IPC and live-token counts are sampled every cycle.

Token matching is the textbook wait-match store: tokens are buffered
per (static instruction, tag) until the firing rule is satisfied.
``allocate`` follows TYR's special firing rule (paper Sec. IV-A); its
interaction with the tag pools is what differentiates the architectures
(see :mod:`repro.sim.tagged.tagspace`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError, TokenBoundExceeded
from repro.compiler.graph import TaggedGraph
from repro.ir.ops import OP_INFO, Op
from repro.sim.latency import load_delay
from repro.sim.memory import Memory
from repro.sim.metrics import ExecutionResult, MetricsRecorder
from repro.sim.tagged.deadlock import DeadlockDiagnosis, PendingAllocation
from repro.sim.tagged.trace import ExecutionTrace
from repro.sim.tagged.tagspace import PoolStats, TagPolicy, TagPool

#: Tag of the machine-level root context (never allocated from a pool).
ROOT_TAG = -1

# Ready-queue actions.
_FIRE = 0
_ALLOC_POP = 1
_ALLOC_CTL = 2


class _AllocState:
    __slots__ = ("request", "ready", "popped", "scheduled",
                 "ctl_scheduled", "waiting")

    def __init__(self):
        self.request = False
        self.ready = False
        self.popped = False
        self.scheduled = False
        self.ctl_scheduled = False
        self.waiting = False


class TaggedEngine:
    """Simulates one execution of an elaborated graph."""

    def __init__(self, graph: TaggedGraph, memory: Memory,
                 policy: TagPolicy, issue_width: int = 128,
                 sample_traces: bool = True,
                 check_token_bound: bool = False,
                 track_occupancy: bool = False,
                 record_trace: bool = False,
                 load_latency: int = 1,
                 max_cycles: int = 50_000_000):
        self.graph = graph
        self.memory = memory
        self.policy = policy
        self.issue_width = issue_width
        self.load_latency = load_latency
        self.max_cycles = max_cycles
        self.metrics = MetricsRecorder(sample_traces=sample_traces)

        self.pools: Dict[str, TagPool] = policy.build_pools(
            graph.blocks, graph.tag_overrides
        )
        self._unique_pools: List[TagPool] = []
        seen = set()
        for pool in self.pools.values():
            if id(pool) not in seen:
                seen.add(id(pool))
                self._unique_pools.append(pool)

        # Flattened node tables for speed.
        n = len(graph.nodes)
        self._op: List[Op] = [nd.op for nd in graph.nodes]
        self._imms: List[Dict[int, object]] = [nd.imms for nd in graph.nodes]
        self._edges: List[List[List[Tuple[int, int]]]] = [
            nd.out_edges for nd in graph.nodes
        ]
        self._n_token_ports: List[int] = [
            len(nd.token_ports) for nd in graph.nodes
        ]
        self._n_inputs: List[int] = [nd.n_inputs for nd in graph.nodes]
        self._attrs: List[Dict[str, object]] = [
            nd.attrs for nd in graph.nodes
        ]
        self._block: List[str] = [nd.block for nd in graph.nodes]
        self._alloc_pool: Dict[int, TagPool] = {}
        self._alloc_spare: Dict[int, bool] = {}
        self._free_pool: Dict[int, TagPool] = {}
        for nd in graph.nodes:
            if nd.op is Op.ALLOCATE:
                self._alloc_pool[nd.node_id] = self.pools[
                    nd.attrs["tagspace"]
                ]
                self._alloc_spare[nd.node_id] = bool(nd.attrs["spare"])
            elif nd.op is Op.FREE:
                self._free_pool[nd.node_id] = self.pools[
                    nd.attrs["tagspace"]
                ]

        # Dynamic state.
        self._wait: Dict[Tuple[int, object], Dict[int, object]] = {}
        self._alloc_state: Dict[Tuple[int, object], _AllocState] = {}
        self._ready: Deque[Tuple[int, object, int]] = deque()
        self._pending: List[Tuple[int, int, object, object]] = []
        self._waiters: Dict[int, Deque[Tuple[int, object]]] = {
            id(p): deque() for p in self._unique_pools
        }
        self._dirty_pools: List[TagPool] = []
        #: cycle index -> pending deposits maturing that cycle (loads
        #: in flight under load_latency > 1).
        self._delayed: Dict[int, List[Tuple]] = {}
        self._live = 0
        self._results: Dict[int, object] = {}

        # Optional dynamic-execution-graph recording (paper Figs. 4/5):
        # every firing becomes an event; token flows become edges.
        self.trace = ExecutionTrace() if record_trace else None
        self._cur_event = -1  # event id of the instruction now firing
        #: (nid, tag) -> {port: producing event id} (tracing only).
        self._wait_src: Dict[Tuple[int, object], Dict[int, int]] = {}

        # Optional per-tag-space wait-match store occupancy tracking
        # (the paper's "Problem #2": token store implementability).
        self._track_occupancy = track_occupancy
        self._occupancy: Dict[str, int] = {}
        self._peak_occupancy: Dict[str, int] = {}
        if track_occupancy:
            for b in list(graph.blocks) + ["<root>"]:
                self._occupancy[b] = 0
                self._peak_occupancy[b] = 0

        self._token_bound: Optional[int] = None
        if check_token_bound:
            caps = [p.capacity for p in self._unique_pools]
            if all(c is not None for c in caps):
                # Theorem 2: T*N*M with T the largest tag space, plus
                # the root context's tokens.
                t = max(caps)
                self._token_bound = (
                    graph.token_bound(t) + graph.max_inputs * n
                )

    # ------------------------------------------------------------------
    def run(self, args: List[object]) -> ExecutionResult:
        if len(args) != len(self.graph.entry_sources):
            raise SimulationError(
                f"entry takes {len(self.graph.entry_sources)} args, "
                f"got {len(args)}"
            )
        for value, dests in zip(args, self.graph.entry_sources):
            for dest_id, port in dests:
                self._pending.append((dest_id, port, ROOT_TAG, value, -1))
                self._live += 1
        self._apply_pending()

        completed = False
        while True:
            if not self._ready:
                if self._delayed:
                    # Memory in flight: burn cycles until it returns.
                    self._apply_pending()
                    self.metrics.sample(0, self._live)
                    continue
                if self._is_finished():
                    completed = True
                    break
                self._raise_deadlock()
            fired = self._run_cycle()
            self.metrics.sample(fired, self._live)
            if (self._token_bound is not None
                    and self._live > self._token_bound):
                raise TokenBoundExceeded(
                    f"live tokens {self._live} exceed Theorem 2 bound "
                    f"{self._token_bound}"
                )
            if self.metrics.cycles >= self.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.max_cycles}"
                )

        results = tuple(
            self._results.get(i)
            for i in range(len(self.graph.result_nodes))
        )
        extra = {
            "policy": self.policy.describe(),
            "issue_width": self.issue_width,
            "peak_store_occupancy": dict(self._peak_occupancy),
            "pool_stats": [
                PoolStats(p.name, p.capacity, p.peak_in_use,
                          p.total_allocations)
                for p in self._unique_pools
            ],
            "leftover_tags_in_use": sum(
                p.in_use for p in self._unique_pools
            ),
        }
        return self.metrics.result("tagged", completed, results, extra)

    # ------------------------------------------------------------------
    def _is_finished(self) -> bool:
        return (not self._pending and not self._delayed
                and self._live == 0 and not self._alloc_state)

    def _raise_deadlock(self) -> None:
        diagnosis = DeadlockDiagnosis(
            cycle=self.metrics.cycles,
            live_tokens=self._live,
            pool_occupancy={
                p.name: (p.in_use, p.capacity)
                for p in self._unique_pools
            },
        )
        for (nid, tag), st in self._alloc_state.items():
            if st.request and not st.popped:
                diagnosis.pending_allocations.append(PendingAllocation(
                    node_id=nid,
                    block=self._alloc_pool[nid].name,
                    parent_tag=tag,
                    ready=st.ready,
                    spare=self._alloc_spare[nid],
                ))
        raise DeadlockError(diagnosis.describe(), diagnosis)

    # ------------------------------------------------------------------
    def _run_cycle(self) -> int:
        fired = 0
        budget = self.issue_width
        ready = self._ready
        while ready and budget > 0:
            nid, tag, action = ready.popleft()
            if action == _FIRE:
                self._fire(nid, tag)
                fired += 1
                budget -= 1
            elif action == _ALLOC_POP:
                if self._fire_alloc_pop(nid, tag):
                    fired += 1
                    budget -= 1
            else:  # _ALLOC_CTL
                self._fire_alloc_ctl(nid, tag)
                fired += 1
                budget -= 1
        self._apply_pending()
        return fired

    def _apply_pending(self) -> None:
        matured = self._delayed.pop(self.metrics.cycles, None)
        if matured:
            self._pending.extend(matured)
        pending = self._pending
        self._pending = []
        for nid, port, tag, data, src in pending:
            self._deposit(nid, port, tag, data, src)
        if self._dirty_pools:
            dirty = self._dirty_pools
            self._dirty_pools = []
            for pool in dirty:
                self._wake_waiters(pool)

    # ------------------------------------------------------------------
    def _emit(self, nid: int, port: int, tag: object, data: object) -> None:
        edges = self._edges[nid][port]
        if not edges:
            return  # token discarded (no consumers)
        append = self._pending.append
        src = self._cur_event
        for dest_id, dest_port in edges:
            append((dest_id, dest_port, tag, data, src))
        self._live += len(edges)

    def _deposit(self, nid: int, port: int, tag: object,
                 data: object, src: int = -1) -> None:
        op = self._op[nid]
        if self.trace is not None and src >= 0:
            self._wait_src.setdefault((nid, tag), {})[port] = src
        if op is Op.ALLOCATE:
            self._deposit_alloc(nid, port, tag)
            return
        key = (nid, tag)
        entry = self._wait.get(key)
        if entry is None:
            entry = {}
            self._wait[key] = entry
        entry[port] = data
        if self._track_occupancy:
            block = self._block[nid]
            occ = self._occupancy[block] + 1
            self._occupancy[block] = occ
            if occ > self._peak_occupancy[block]:
                self._peak_occupancy[block] = occ
        if op is Op.MERGE:
            if 0 in entry:
                want = 1 if entry[0] else 2
                if want in entry or want in self._imms[nid]:
                    self._ready.append((nid, tag, _FIRE))
        elif len(entry) == self._n_token_ports[nid]:
            self._ready.append((nid, tag, _FIRE))

    # ------------------------------------------------------------------
    # Allocate state machine (paper Sec. IV-A firing rule)
    # ------------------------------------------------------------------
    def _deposit_alloc(self, nid: int, port: int, tag: object) -> None:
        key = (nid, tag)
        st = self._alloc_state.get(key)
        if st is None:
            st = _AllocState()
            self._alloc_state[key] = st
        if port == 0:
            st.request = True
        else:
            st.ready = True
            if st.popped and not st.ctl_scheduled:
                st.ctl_scheduled = True
                self._ready.append((nid, tag, _ALLOC_CTL))
                return
        if st.request and not st.popped and not st.scheduled:
            pool = self._alloc_pool[nid]
            if pool.can_pop(st.ready, self._alloc_spare[nid]):
                st.scheduled = True
                # A stale queue entry (if any) is skipped by
                # _wake_waiters since waiting is cleared here.
                st.waiting = False
                self._ready.append((nid, tag, _ALLOC_POP))
            elif not st.waiting:
                st.waiting = True
                self._waiters[id(pool)].append(key)

    def _fire_alloc_pop(self, nid: int, tag: object) -> bool:
        key = (nid, tag)
        st = self._alloc_state[key]
        pool = self._alloc_pool[nid]
        st.scheduled = False
        if not pool.can_pop(st.ready, self._alloc_spare[nid]):
            # Another allocation took the tag this cycle; wait for a
            # free.
            if not st.waiting:
                st.waiting = True
                self._waiters[id(pool)].append(key)
            return False
        if self.trace is not None:
            self._cur_event = self.trace.record(
                self.metrics.cycles, nid, self._block[nid],
                "allocate", tag,
                self._wait_src.pop((nid, tag), {}),
            )
        new_tag = pool.pop()
        st.popped = True
        st.waiting = False
        self._live -= 1  # the request token is consumed
        self._emit(nid, 0, tag, new_tag)
        if st.ready:
            self._live -= 1  # the ready token is consumed
            self._emit(nid, 1, tag, 0)
            del self._alloc_state[key]
        return True

    def _fire_alloc_ctl(self, nid: int, tag: object) -> None:
        key = (nid, tag)
        self._live -= 1  # consume the late ready token
        self._emit(nid, 1, tag, 0)
        del self._alloc_state[key]

    def _wake_waiters(self, pool: TagPool) -> None:
        waiters = self._waiters[id(pool)]
        if not waiters:
            return
        still_waiting: Deque[Tuple[int, object]] = deque()
        while waiters:
            key = waiters.popleft()
            st = self._alloc_state.get(key)
            if st is None or st.popped or st.scheduled or not st.waiting:
                continue
            nid = key[0]
            if pool.can_pop(st.ready, self._alloc_spare[nid]):
                st.scheduled = True
                st.waiting = False
                self._ready.append((key[0], key[1], _ALLOC_POP))
            else:
                still_waiting.append(key)
        self._waiters[id(pool)] = still_waiting

    # ------------------------------------------------------------------
    # Ordinary instruction firing
    # ------------------------------------------------------------------
    def _fire(self, nid: int, tag: object) -> None:
        op = self._op[nid]
        if self.trace is not None:
            self._cur_event = self.trace.record(
                self.metrics.cycles, nid, self._block[nid],
                self._op[nid].value, tag,
                self._wait_src.pop((nid, tag), {}),
            )
        entry = self._wait.pop((nid, tag))
        self._live -= len(entry)
        if self._track_occupancy:
            self._occupancy[self._block[nid]] -= len(entry)
        imms = self._imms[nid]

        if op is Op.MERGE:
            d = entry[0]
            chosen = 1 if d else 2
            data = entry[chosen] if chosen in entry else imms[chosen]
            self._emit(nid, 0, tag, data)
            return
        if op is Op.STEER:
            d = entry.get(0, imms.get(0))
            value = entry.get(1, imms.get(1))
            attrs = self._attrs[nid]
            if bool(d) == bool(attrs["sense"]):
                self._emit(nid, 0, tag, value)
            self._emit(nid, 1, tag, 0)
            return

        # Assemble inputs in port order for the remaining ops.
        n_in = self._n_inputs[nid]
        inputs = [
            entry[p] if p in entry else imms[p] for p in range(n_in)
        ]
        if op is Op.LOAD:
            attrs = self._attrs[nid]
            value = self.memory.load(attrs["array"], inputs[0])
            delay = load_delay(self.load_latency, attrs["array"],
                               inputs[0])
            if delay <= 1:
                self._emit(nid, 0, tag, value)
                self._emit(nid, 1, tag, 0)
            else:
                due = self.metrics.cycles + delay - 1
                bucket = self._delayed.setdefault(due, [])
                src = self._cur_event
                for port, data in ((0, value), (1, 0)):
                    for dest_id, dest_port in self._edges[nid][port]:
                        bucket.append((dest_id, dest_port, tag, data,
                                       src))
                        self._live += 1
        elif op is Op.STORE:
            attrs = self._attrs[nid]
            self.memory.store(attrs["array"], inputs[0], inputs[1])
            self._emit(nid, 0, tag, 0)
        elif op is Op.JOIN:
            self._emit(nid, 0, tag, inputs[0])
        elif op is Op.CHANGE_TAG:
            table = self._attrs[nid].get("route_table")
            if table is None:
                self._emit(nid, 0, inputs[0], inputs[1])
            else:
                # Dynamic-destination changeTag (multi-caller returns).
                dests = table.get(inputs[2], ())
                if dests:
                    append = self._pending.append
                    src = self._cur_event
                    for dest_id, dest_port in dests:
                        append((dest_id, dest_port, inputs[0],
                                inputs[1], src))
                    self._live += len(dests)
            self._emit(nid, 1, tag, 0)
        elif op is Op.EXTRACT_TAG:
            self._emit(nid, 0, tag, tag)
        elif op is Op.FREE:
            pool = self._free_pool[nid]
            pool.push(tag)
            if pool not in self._dirty_pools:
                self._dirty_pools.append(pool)
        else:
            info = OP_INFO[op]
            if not info.pure:
                raise SimulationError(f"cannot execute {op.value}")
            value = info.evaluate(*inputs)
            attrs = self._attrs[nid]
            idx = attrs.get("result_index")
            if idx is not None:
                self._results[idx] = value
            self._emit(nid, 0, tag, value)
