"""Tag pools and allocation policies (the paper's central knob).

A :class:`TagPool` hands out tags for one or more tag spaces. The
*allocation rule* is what differentiates architectures:

* **Greedy** pools pop whenever a tag is free. This is what prior
  architectures do; with an unbounded pool it is naive unordered
  dataflow, with a bounded pool it deadlocks (paper Fig. 11, Sec. V).
* **Gated** pools implement TYR's ``allocate`` semantics (paper
  Sec. IV-A): a *ready* context pops whenever more than ``reserve``
  tags are free (never dipping into the reserve); a context that is
  not yet ready pops only *speculatively*, and a speculative pop must
  leave at least **two** tags free. ``reserve`` is 0 for ordinary
  allocates and 1 for *external* allocates into tail-recursive blocks
  (the spare-tag rule of Lemma 2).

Why speculation must leave two tags, not one: several sibling regions
can compete for one parent's pool. A chain of speculative pops (loop
control racing ahead of serially carried data) that leaves only one
tag free starves every *external* allocate into that loop block --
even a ready one needs ``reserve + 1 = 2`` free tags (take one, keep
the spare) -- while the speculative holders wait on data that
transitively depends on those starved externals: deadlock. Leaving
two tags keeps the strongest gated claim (a ready spare external)
satisfiable at all times, which restores Theorem 2. See
docs/ARCHITECTURE.md section 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError


class TagPool:
    """A free list of tags for one tag space (or a shared global one).

    ``honor_ready`` / ``honor_spare`` exist for ablation studies: they
    disable TYR's ready-gating (Lemma 1) or spare-tag (Lemma 2) rule
    individually, which reintroduces deadlocks -- evidence that both
    rules are load-bearing.
    """

    def __init__(self, name: str, capacity: Optional[int],
                 gated: bool, honor_ready: bool = True,
                 honor_spare: bool = True):
        if capacity is not None and capacity < 1:
            raise SimulationError(
                f"tag pool {name!r} needs at least one tag"
            )
        self.name = name
        self.capacity = capacity  # None = unbounded
        self.gated = gated
        self.honor_ready = honor_ready
        self.honor_spare = honor_spare
        self._free: List[int] = (
            list(range(capacity - 1, -1, -1)) if capacity is not None
            else []
        )
        self._free_set = set(self._free)
        self._next = 0  # for unbounded pools
        self.in_use = 0
        self.peak_in_use = 0
        self.total_allocations = 0
        #: tag -> (allocating node id, parent tag) for tags currently
        #: in use (bounded pools only; maintained by the engine at pop
        #: time and cleared by :meth:`push`). The deadlock analyzer
        #: reads this to reconstruct the wait-for graph.
        self.holders: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        if self.capacity is None:
            return 1 << 60
        return len(self._free)

    def tags_needed(self, ready: bool, spare: bool) -> int:
        """Free tags the allocation rule demands before a pop.

        A ready pop needs ``reserve + 1`` free tags (take one, never
        dip into the reserve). A speculative (not-ready) pop needs 3:
        it must leave two tags free so the strongest gated claim --
        a *ready external* allocate into a loop block, which needs
        ``reserve + 1 = 2`` -- stays satisfiable no matter how far
        speculation runs ahead. Leaving only one (the old rule)
        let sibling regions mutually starve under one parent's pool.

        The deadlock analyzer calls this too, so the gate arithmetic
        reported in a diagnosis is the arithmetic actually enforced.
        """
        if self.capacity is None:
            return 0
        if not self.gated:
            return 1
        reserve = 1 if (spare and self.honor_spare) else 0
        if not self.honor_ready:
            ready = True
        return (reserve + 1) if ready else 3

    def can_pop(self, ready: bool, spare: bool) -> bool:
        """May an allocate pop right now?

        ``ready``: the context's ready join has fired. ``spare``: this
        is an external allocate into a tail-recursive block (one tag
        must remain in reserve for the backedge). See
        :meth:`tags_needed` for the gate arithmetic.
        """
        if self.capacity is None:
            return True
        return len(self._free) >= self.tags_needed(ready, spare)

    def pop(self) -> int:
        self.total_allocations += 1
        self.in_use += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        if self.capacity is None:
            tag = self._next
            self._next += 1
            return tag
        if not self._free:
            raise SimulationError(f"tag pool {self.name!r} exhausted")
        tag = self._free.pop()
        self._free_set.discard(tag)
        return tag

    def push(self, tag: int) -> None:
        self.holders.pop(tag, None)
        self.in_use -= 1
        if self.in_use < 0:
            raise SimulationError(
                f"tag pool {self.name!r}: double free of tag {tag}"
            )
        if self.capacity is not None:
            if tag in self._free_set or not 0 <= tag < self.capacity:
                raise SimulationError(
                    f"tag pool {self.name!r}: bad free of tag {tag}"
                )
            self._free.append(tag)
            self._free_set.add(tag)


@dataclass
class PoolStats:
    name: str
    capacity: Optional[int]
    peak_in_use: int
    total_allocations: int


class TagPolicy:
    """Base class: maps tag spaces (block names) to pools."""

    name = "abstract"

    def build_pools(self, blocks: List[str],
                    overrides: Dict[str, Optional[int]]
                    ) -> Dict[str, TagPool]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


def _resolve_pool_size(policy_name: str, block: str,
                       user_overrides: Dict[str, Optional[int]],
                       graph_overrides: Dict[str, Optional[int]],
                       default: int) -> int:
    """Pick a block's tag-pool size: user > program > policy default.

    Every per-block policy routes through here so the precedence and
    validation cannot drift apart.  The checks are explicit ``None``
    comparisons -- a falsy override (0) is an error to report, not a
    request for the default.
    """
    size = user_overrides.get(block)
    if size is None:
        size = graph_overrides.get(block)
    if size is None:
        size = default
    if size < 2:
        raise SimulationError(
            f"{policy_name} needs >= 2 tags per block; "
            f"{block!r} has {size}"
        )
    return size


class UnboundedGlobalPolicy(TagPolicy):
    """Naive unordered dataflow: one unbounded global tag space."""

    name = "unordered"

    def build_pools(self, blocks, overrides):
        pool = TagPool("<global>", None, gated=False)
        return {b: pool for b in blocks}


class BoundedGlobalPolicy(TagPolicy):
    """A bounded global tag space with greedy allocation.

    This is the "obvious" way to throttle a tagged dataflow machine and
    it deadlocks (paper Fig. 11): nothing stops dependent work from
    claiming the last tag.
    """

    name = "unordered-bounded"

    def __init__(self, total_tags: int):
        self.total_tags = total_tags

    def build_pools(self, blocks, overrides):
        pool = TagPool("<global>", self.total_tags, gated=False)
        return {b: pool for b in blocks}

    def describe(self) -> str:
        return f"{self.name}(T={self.total_tags})"


class TyrPolicy(TagPolicy):
    """TYR: one gated local tag space per concurrent block.

    ``tags_per_block`` is the default size; per-block overrides come
    from the program (loop ``tags=`` annotations, paper Fig. 18) or the
    ``overrides`` argument (block name -> size).
    """

    name = "tyr"

    def __init__(self, tags_per_block: int = 64,
                 overrides: Optional[Dict[str, int]] = None):
        if tags_per_block < 2:
            raise SimulationError(
                "TYR needs at least two tags per concurrent block "
                "(paper Sec. III)"
            )
        self.tags_per_block = tags_per_block
        self.user_overrides = dict(overrides or {})

    def build_pools(self, blocks, overrides):
        pools = {}
        for b in blocks:
            size = _resolve_pool_size(
                self.name, b, self.user_overrides, overrides,
                self.tags_per_block,
            )
            pools[b] = TagPool(b, size, gated=True)
        return pools

    def describe(self) -> str:
        return f"{self.name}(t={self.tags_per_block})"


class AblatedTyrPolicy(TyrPolicy):
    """TYR with one of its allocation rules disabled (ablation only).

    ``drop="ready"`` removes the "pop the last tag only for a ready
    context" rule (Lemma 1); ``drop="spare"`` removes the tail-
    recursion reserve (Lemma 2). Either ablation can deadlock, which
    is the point: the test suite uses this policy to show both rules
    are necessary, not incidental.
    """

    def __init__(self, tags_per_block: int = 2, drop: str = "spare",
                 overrides: Optional[Dict[str, int]] = None):
        super().__init__(tags_per_block, overrides)
        if drop not in ("ready", "spare"):
            raise SimulationError("drop must be 'ready' or 'spare'")
        self.drop = drop
        self.name = f"tyr-no{drop}"

    def build_pools(self, blocks, overrides):
        pools = {}
        for b in blocks:
            size = _resolve_pool_size(
                self.name, b, self.user_overrides, overrides,
                self.tags_per_block,
            )
            pools[b] = TagPool(
                b, size, gated=True,
                honor_ready=self.drop != "ready",
                honor_spare=self.drop != "spare",
            )
        return pools

    def describe(self) -> str:
        return f"{self.name}(t={self.tags_per_block})"


class KBoundedPolicy(TagPolicy):
    """TTDA-style k-bounding: per-block pools, *greedy* allocation.

    Effective for simple (affine innermost) loops but deadlock-prone on
    general structures -- the paper's Sec. VIII-A discussion baseline.
    """

    name = "kbounded"

    def __init__(self, tags_per_block: int = 64,
                 overrides: Optional[Dict[str, int]] = None):
        if tags_per_block < 2:
            raise SimulationError(
                "k-bounding needs at least two tags per block"
            )
        self.tags_per_block = tags_per_block
        self.user_overrides = dict(overrides or {})

    def build_pools(self, blocks, overrides):
        pools = {}
        for b in blocks:
            size = _resolve_pool_size(
                self.name, b, self.user_overrides, overrides,
                self.tags_per_block,
            )
            pools[b] = TagPool(b, size, gated=False)
        return pools

    def describe(self) -> str:
        return f"{self.name}(k={self.tags_per_block})"
